"""Objective functions and the simulation-backed fitness evaluator.

The GA (offline or online) needs a scalar "higher is better" fitness for a
candidate genome.  :class:`FitnessEvaluator` builds a fresh
:class:`~repro.sim.system.SimSystem` per evaluation -- same traces, same
scheduler factory, one MITTS shaper per core configured from the genome --
and scores the resulting stats with one of the objectives the paper
optimises for: performance, throughput (``-S_avg``), fairness
(``-S_max``), or performance-per-cost (Section IV-G).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.bins import BinConfig
from ..core.pricing import config_price_core_equivalents
from ..core.shaper import MittsShaper
from ..resilience.watchdog import StarvationError, WatchdogConfig
from ..sim.stats import SystemStats
from ..sim.system import SimSystem, SystemConfig
from .genome import Genome


ObjectiveFn = Callable[[SystemStats, Genome, "FitnessEvaluator"], float]

#: fitness assigned to a genome whose simulation starved (watchdog
#: raised): finite (stays JSON/pickle-round-trippable, unlike -inf) yet
#: unreachably below any real objective, so starved genomes lose every
#: tournament without aborting the search
STARVATION_FITNESS = -1.0e18


def performance_objective(stats: SystemStats, genome: Genome,
                          evaluator: "FitnessEvaluator") -> float:
    """Total work retired (single-program performance, Figure 11)."""
    return float(sum(core.work_cycles for core in stats.cores))


def throughput_objective(stats: SystemStats, genome: Genome,
                         evaluator: "FitnessEvaluator") -> float:
    """Negated average slowdown ``-S_avg`` (higher is better)."""
    slowdowns = evaluator.slowdowns(stats)
    return -sum(slowdowns) / len(slowdowns)


def fairness_objective(stats: SystemStats, genome: Genome,
                       evaluator: "FitnessEvaluator") -> float:
    """Negated maximum slowdown ``-S_max`` (higher is better)."""
    return -max(evaluator.slowdowns(stats))


def perf_per_cost_objective(stats: SystemStats, genome: Genome,
                            evaluator: "FitnessEvaluator") -> float:
    """Work per unit price: the IaaS economic-efficiency objective.

    Cost is the purchased distribution's price (in core-equivalents via the
    1.6 GB/s exchange rate) plus one core-equivalent for the CPU itself.
    """
    work = sum(core.work_cycles for core in stats.cores)
    cost = len(genome) + sum(config_price_core_equivalents(config)
                             for config in genome)
    return work / max(cost, 1e-9)


OBJECTIVES = {
    "performance": performance_objective,
    "throughput": throughput_objective,
    "fairness": fairness_objective,
    "perf_per_cost": perf_per_cost_objective,
}


@dataclass
class FitnessEvaluator:
    """Runs one simulation per genome and scores it.

    ``alone_work`` holds each program's work retired when run alone for
    ``run_cycles`` (needed by the slowdown objectives); compute it once
    with :meth:`measure_alone` and share it across evaluations.
    """

    traces: Sequence
    system_config: SystemConfig
    run_cycles: int
    objective: ObjectiveFn
    scheduler_factory: Optional[Callable[[int], object]] = None
    alone_work: Optional[List[float]] = None
    shaper_method: int = MittsShaper.METHOD_DEDUCT_REFUND
    #: forward-progress watchdog attached to every evaluation run; pass
    #: ``None`` to run unguarded (a degenerate genome then hangs until
    #: the horizon instead of raising)
    watchdog: Optional[WatchdogConfig] = field(
        default_factory=WatchdogConfig)
    #: filled in as evaluations run: (genome, fitness) of the best seen
    evaluations: int = field(default=0)
    #: evaluations that starved and were scored ``STARVATION_FITNESS``
    starvations: int = field(default=0)

    def measure_alone(self) -> List[float]:
        """Per-program work retired running alone (unshaped)."""
        work = []
        for trace in self.traces:
            system = SimSystem([trace], config=self.system_config,
                               scheduler=self._make_scheduler(1))
            stats = system.run(self.run_cycles)
            work.append(float(stats.cores[0].work_cycles))
        self.alone_work = work
        return work

    def _make_scheduler(self, num_cores: int):
        if self.scheduler_factory is None:
            return None
        return self.scheduler_factory(num_cores)

    def slowdowns(self, stats: SystemStats) -> List[float]:
        if self.alone_work is None:
            raise ValueError("call measure_alone() before using slowdowns")
        return [alone / max(core.work_cycles, 1e-9)
                for alone, core in zip(self.alone_work, stats.cores)]

    def run_genome(self, genome: Genome) -> SystemStats:
        """Simulate the mix with the genome's shapers installed.

        Shaper replenishment phases are staggered per core so candidate
        evaluations don't suffer artificial lockstep credit bursts.
        """
        if len(genome) != len(self.traces):
            raise ValueError("genome must configure every core")
        num_cores = max(1, len(genome))
        limiters = [MittsShaper(config, method=self.shaper_method,
                                phase=core_id * config.replenish_period()
                                // num_cores)
                    for core_id, config in enumerate(genome)]
        system = SimSystem(self.traces, config=self.system_config,
                           limiters=limiters,
                           scheduler=self._make_scheduler(len(self.traces)))
        if self.watchdog is not None:
            system.attach_watchdog(self.watchdog)
        return system.run(self.run_cycles)

    def __call__(self, genome: Genome) -> float:
        """Fitness of ``genome``; starved runs score ``STARVATION_FITNESS``.

        A genome that parks its cores (watchdog raises
        :class:`~repro.resilience.watchdog.StarvationError`) is a *bad
        candidate*, not a search failure: it gets a finite, maximally
        poor fitness and the GA moves on.
        """
        try:
            stats = self.run_genome(genome)
        except StarvationError:
            self.evaluations += 1
            self.starvations += 1
            return STARVATION_FITNESS
        self.evaluations += 1
        return self.objective(stats, genome, self)


def resolve_objective(objective) -> ObjectiveFn:
    """Accept an objective name or a callable."""
    if callable(objective):
        return objective
    try:
        return OBJECTIVES[objective]
    except KeyError:
        raise KeyError(f"unknown objective {objective!r}; "
                       f"known: {sorted(OBJECTIVES)}") from None
