"""Bin-configuration search: offline/online GA and baseline optimizers."""

from .ga import (GaParams, GaResult, GeneticAlgorithm, PAPER_GENERATIONS,
                 PAPER_POPULATION)
from .genome import (Genome, crossover, mutate, random_config,
                     random_genome, seed_genomes)
from .hillclimb import HillClimber, RandomSearch
from .objectives import (FitnessEvaluator, OBJECTIVES, fairness_objective,
                         perf_per_cost_objective, performance_objective,
                         resolve_objective, throughput_objective)
from .online import OnlineGaTuner
from .profiler import (Profile, config_from_profile, profile_application,
                       profile_benchmark)

__all__ = [
    "FitnessEvaluator",
    "GaParams",
    "GaResult",
    "GeneticAlgorithm",
    "Genome",
    "HillClimber",
    "OBJECTIVES",
    "OnlineGaTuner",
    "Profile",
    "PAPER_GENERATIONS",
    "PAPER_POPULATION",
    "RandomSearch",
    "crossover",
    "fairness_objective",
    "mutate",
    "perf_per_cost_objective",
    "performance_objective",
    "profile_application",
    "profile_benchmark",
    "config_from_profile",
    "random_config",
    "random_genome",
    "resolve_objective",
    "seed_genomes",
    "throughput_objective",
]
