"""Metrics: slowdowns (S_avg/S_max), inter-arrival distributions, reports."""

from .interarrival import InterarrivalDistribution
from .report import format_bar_chart, format_series, format_table
from .slowdown import (average_slowdown, geometric_mean,
                       harmonic_mean_speedup, max_slowdown,
                       mise_online_slowdown, slowdown_from_work,
                       slowdowns_from_rates, unfairness,
                       weighted_speedup)

__all__ = [
    "InterarrivalDistribution",
    "average_slowdown",
    "format_bar_chart",
    "format_series",
    "format_table",
    "geometric_mean",
    "harmonic_mean_speedup",
    "max_slowdown",
    "mise_online_slowdown",
    "slowdown_from_work",
    "slowdowns_from_rates",
    "unfairness",
    "weighted_speedup",
]
