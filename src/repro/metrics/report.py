"""Plain-text table/series formatting for the experiment harness.

Every experiment module renders its result through these helpers so the
benchmark output visually matches the rows/series the paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = None, float_format: str = "{:.3f}") -> str:
    """Render an aligned monospace table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Iterable,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render an (x, y) series the way a figure's data table would read."""
    lines = [f"{name}: {x_label} -> {y_label}"]
    for x, y in points:
        if isinstance(y, float):
            lines.append(f"  {x}: {y:.4f}")
        else:
            lines.append(f"  {x}: {y}")
    return "\n".join(lines)


def format_bar_chart(name: str, labels: Sequence[str],
                     values: Sequence[float], width: int = 40) -> str:
    """ASCII bar chart, handy for eyeballing figure shapes in a terminal."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines = [name]
    peak = max(values) if values else 1.0
    peak = max(peak, 1e-9)
    label_width = max((len(l) for l in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"  {label.ljust(label_width)} |{bar} {value:.3f}")
    return "\n".join(lines)
