"""Slowdown, throughput and fairness metrics (Section IV-D).

The paper measures multi-program quality with application slowdowns
``T_shared / T_single``: the *average* slowdown ``S_avg`` is the throughput
metric, the *maximum* slowdown ``S_max`` the fairness metric; lower is
better for both.

In this reproduction a program's runs are fixed-wall-clock, so the time
ratio is computed from replayed-work rates: a program that retires half
the work per cycle when shared would take twice as long to finish, i.e.
``slowdown = work_alone / work_shared`` over the same window.
"""

from __future__ import annotations

import math
from typing import List, Sequence


def slowdown_from_work(alone_work: float, shared_work: float) -> float:
    """``T_shared / T_single`` via work-rate inversion; floored at 1e-9 work."""
    if alone_work < 0 or shared_work < 0:
        raise ValueError("work amounts must be non-negative")
    return alone_work / max(shared_work, 1e-9)


def average_slowdown(slowdowns: Sequence[float]) -> float:
    """``S_avg``: the paper's throughput measure (lower is better)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    return sum(slowdowns) / len(slowdowns)


def max_slowdown(slowdowns: Sequence[float]) -> float:
    """``S_max``: the paper's fairness measure (lower is better)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    return max(slowdowns)


def unfairness(slowdowns: Sequence[float]) -> float:
    """Max/min slowdown ratio (the FST control metric)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    return max(slowdowns) / max(min(slowdowns), 1e-9)


def geometric_mean(values: Sequence[float]) -> float:
    """GeoMean used for the per-benchmark gain summaries (Figs 11/18)."""
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mise_online_slowdown(alone_service_rate: float,
                         shared_service_rate: float,
                         stall_fraction: float,
                         alpha: float = 0.5) -> float:
    """The paper's online slowdown estimate (Section IV-B).

    ``slowdown = (1 - a) * (a * RSR_alone / RSR_shared) + a * stall_frac``
    where ``RSR_alone`` is the request service rate measured while the
    application had highest priority, ``RSR_shared`` the rate in shared
    mode, and ``stall_frac`` the fraction of cycles spent stalled on memory
    (the formula as printed in the paper, used by the online GA's fitness
    measurement).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if not 0.0 <= stall_fraction <= 1.0:
        raise ValueError("stall_fraction must be in [0, 1]")
    rate_ratio = alone_service_rate / max(shared_service_rate, 1e-9)
    return (1 - alpha) * (alpha * rate_ratio) + alpha * stall_fraction


def slowdowns_from_rates(alone_rates: Sequence[float],
                         shared_rates: Sequence[float]) -> List[float]:
    """Element-wise work-rate slowdowns for a whole mix."""
    if len(alone_rates) != len(shared_rates):
        raise ValueError("rate vectors must have equal length")
    return [slowdown_from_work(alone, shared)
            for alone, shared in zip(alone_rates, shared_rates)]


def weighted_speedup(slowdowns: Sequence[float]) -> float:
    """Sum of per-program speedups (1/slowdown): the standard system-
    throughput metric of the multiprogram-scheduling literature.  Equals
    the core count when nothing interferes; higher is better."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return sum(1.0 / s for s in slowdowns)


def harmonic_mean_speedup(slowdowns: Sequence[float]) -> float:
    """Harmonic mean of per-program speedups: balances throughput and
    fairness in one number (higher is better)."""
    if not slowdowns:
        raise ValueError("need at least one slowdown")
    if any(s <= 0 for s in slowdowns):
        raise ValueError("slowdowns must be positive")
    return len(slowdowns) / sum(s for s in slowdowns)
