"""Inter-arrival time distributions (the object Figures 1 and 2 plot).

A distribution is a histogram of the gaps between successive memory
requests leaving one core, bucketed at the bin length ``L``.  The
simulator's :class:`~repro.sim.stats.CoreStats` accumulates the histogram
inline; this module wraps it with the summary measures the paper reasons
about -- mean inter-arrival (average bandwidth) and burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.stats import CoreStats


@dataclass
class InterarrivalDistribution:
    """Histogram of request inter-arrival times, bucket width ``L``."""

    counts: Dict[int, int]
    bucket_width: int = 10

    @classmethod
    def from_core_stats(cls, stats: CoreStats, bucket_width: int = 10,
                        stream: str = "memory") -> "InterarrivalDistribution":
        """Build from a core's histogram.

        ``stream="memory"`` (default) uses the LLC-miss stream the paper's
        figures plot; ``stream="shaper"`` uses the post-shaper L1-miss
        stream the MITTS hardware itself observes.
        """
        if stream == "memory":
            counts = dict(stats.mem_interarrival)
        elif stream == "shaper":
            counts = dict(stats.interarrival)
        else:
            raise ValueError(f"unknown stream {stream!r}")
        return cls(counts=counts, bucket_width=bucket_width)

    @property
    def total_requests(self) -> int:
        return sum(self.counts.values())

    def frequency(self, bucket: int) -> float:
        """Fraction of requests in ``bucket`` (the Figure 1 y-axis)."""
        total = self.total_requests
        if total == 0:
            return 0.0
        return self.counts.get(bucket, 0) / total

    def mean(self) -> float:
        """Mean inter-arrival time (cycles), using bucket centres."""
        total = self.total_requests
        if total == 0:
            return 0.0
        weighted = sum((bucket + 0.5) * self.bucket_width * count
                       for bucket, count in self.counts.items())
        return weighted / total

    def variance(self) -> float:
        total = self.total_requests
        if total == 0:
            return 0.0
        mean = self.mean()
        return sum(count * ((bucket + 0.5) * self.bucket_width - mean) ** 2
                   for bucket, count in self.counts.items()) / total

    def burstiness(self) -> float:
        """Coefficient of variation of inter-arrival times.

        0 for perfectly periodic traffic (Figure 1 top), ~1 for Poisson,
        larger for bursty on/off traffic (Figure 1 middle/bottom).
        """
        mean = self.mean()
        if mean == 0:
            return 0.0
        return self.variance() ** 0.5 / mean

    def to_series(self, max_bucket: int = None) -> List[Tuple[int, int]]:
        """(inter-arrival cycles, count) pairs sorted by inter-arrival.

        This is exactly the series Figure 2 plots: number of requests vs.
        inter-arrival time.
        """
        if max_bucket is None:
            max_bucket = max(self.counts, default=0)
        return [(bucket * self.bucket_width, self.counts.get(bucket, 0))
                for bucket in range(max_bucket + 1)]

    def truncated(self, max_bucket: int) -> "InterarrivalDistribution":
        """Clamp buckets beyond ``max_bucket`` into it (hardware's last bin)."""
        counts: Dict[int, int] = {}
        for bucket, count in self.counts.items():
            key = min(bucket, max_bucket)
            counts[key] = counts.get(key, 0) + count
        return InterarrivalDistribution(counts=counts,
                                        bucket_width=self.bucket_width)
