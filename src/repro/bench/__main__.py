"""CLI for the simulator throughput benchmarks.

Examples::

    python -m repro.bench                  # full run, writes BENCH_sim.json
    python -m repro.bench --quick          # CI smoke variant
    python -m repro.bench --repeat 8       # best-of-8 on a noisy machine
    python -m repro.bench --profile        # cProfile top functions
    python -m repro.bench --breakdown      # per-subsystem time attribution
    python -m repro.bench --verify-kernels # heap vs batched fingerprints
    python -m repro.bench --baseline benchmarks/perf/baseline.json \
        --max-regression 0.15              # exit 1 on a >15% eps drop
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from typing import List, Optional

from . import (FULL_CYCLES, QUICK_CYCLES, WORKLOADS, breakdown_workload,
               compare_to_baseline, dump_json, load_json, run_benchmarks,
               verify_kernels, with_history)


def _profile(workload_names: Optional[List[str]], quick: bool,
             top: int) -> None:
    cycles = QUICK_CYCLES if quick else FULL_CYCLES
    for workload in WORKLOADS:
        if workload_names is not None and workload.name not in workload_names:
            continue
        system = workload.build()
        profiler = cProfile.Profile()
        profiler.enable()
        system.run(cycles)
        profiler.disable()
        print(f"== {workload.name} ({cycles} cycles) ==")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("tottime").print_stats(top)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulator throughput (events/sec).")
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs, fewer repeats (CI smoke)")
    parser.add_argument("--workload", action="append", dest="workloads",
                        choices=[w.name for w in WORKLOADS],
                        help="run only this workload (repeatable)")
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="result JSON path (default: %(default)s)")
    parser.add_argument("--no-output", action="store_true",
                        help="do not write the result JSON")
    parser.add_argument("--label", default=None,
                        help="append this run to the output file's "
                             "committed history under LABEL")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to compare events/sec against")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="max fractional events/sec drop vs the "
                             "baseline before failing (default 0.15)")
    parser.add_argument("--repeat", type=int, default=None, metavar="N",
                        help="override the repeats per workload "
                             "(best-of-N; default 4 full / 2 quick)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile each workload instead of timing")
    parser.add_argument("--profile-top", type=int, default=20,
                        help="functions shown with --profile")
    parser.add_argument("--breakdown", action="store_true",
                        help="attribute profiled self-time to subsystems "
                             "instead of timing")
    parser.add_argument("--verify-kernels", action="store_true",
                        help="run each workload under both event kernels "
                             "and require identical stats fingerprints")
    args = parser.parse_args(argv)

    if args.profile:
        _profile(args.workloads, args.quick, args.profile_top)
        return 0

    if args.breakdown:
        cycles = QUICK_CYCLES if args.quick else FULL_CYCLES
        for workload in WORKLOADS:
            if args.workloads is not None \
                    and workload.name not in args.workloads:
                continue
            report = breakdown_workload(workload, cycles)
            print(f"== {workload.name} ({cycles} cycles, "
                  f"{report['profiled_seconds']:.3f} s profiled) ==")
            for name, entry in report["subsystems"].items():
                print(f"{name:>14}: {entry['seconds']:8.4f} s "
                      f"({entry['fraction']:6.1%})")
        return 0

    if args.verify_kernels:
        report = verify_kernels(quick=args.quick,
                                workload_names=args.workloads)
        for name, entry in report["workloads"].items():
            verdict = "ok" if entry["ok"] else "MISMATCH"
            print(f"{name:>8}: heap vs batched fingerprints "
                  f"[{verdict}] ({entry['cycles']} cycles)")
            if not entry["ok"]:
                print(json.dumps(entry["fingerprints"], indent=2,
                                 sort_keys=True))
        if not report["ok"]:
            print("FAIL: kernel fingerprints diverged")
            return 1
        return 0

    results = run_benchmarks(quick=args.quick, workload_names=args.workloads,
                             repeats=args.repeat)
    for name, result in results["workloads"].items():
        eps = result["events_per_second"]
        print(f"{name:>8}: {result['wall_seconds']:.4f} s "
              f"({result['cycles']} cycles, best of {result['repeats']}), "
              f"{result['events_executed']} events, "
              f"{eps:,.0f} events/sec")

    exit_code = 0
    if args.baseline:
        comparison = compare_to_baseline(results, load_json(args.baseline),
                                         args.max_regression)
        results["baseline_comparison"] = comparison
        for name, entry in comparison["workloads"].items():
            verdict = "ok" if entry["ok"] else "REGRESSION"
            print(f"{name:>8}: {entry['change']:+.1%} vs baseline "
                  f"({entry['baseline_events_per_second']:,.0f} -> "
                  f"{entry['events_per_second']:,.0f} events/sec) "
                  f"[{verdict}]")
        if not comparison["ok"]:
            print(f"FAIL: events/sec regressed more than "
                  f"{args.max_regression:.0%} on at least one workload")
            exit_code = 1

    if not args.no_output:
        if args.label is not None:
            try:
                previous = load_json(args.output)
            except (OSError, ValueError):
                previous = None
            results = with_history(results, previous, args.label)
        dump_json(results, args.output)
        print(f"wrote {args.output}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
