"""Simulator throughput benchmarks (``python -m repro.bench``).

This package measures the *simulator's* speed -- events per wall-clock
second and wall time per run -- not the simulated system's performance.
It exists so that event-kernel changes can be judged against a committed
baseline: the CI perf-smoke job runs ``python -m repro.bench --quick``
and fails when events/sec regresses more than a tolerance against
``benchmarks/perf/baseline.json``.

Two seeded workloads cover the two main simulation shapes:

* ``single`` -- one ``mcf``-profile core on the scaled single-program
  configuration (small LLC, one shaper port).
* ``mix4``   -- the four-core workload mix 1 on the scaled multi-program
  configuration (shared LLC, four ports, FCFS fallback scheduler).

Both are fully deterministic (fixed profiles, fixed seeds), so event
counts are reproducible run to run; only wall time varies.  Wall-clock
reads go through :mod:`repro.runner.wallclock`, the repo's single
sanctioned real-time access point, and never flow into simulation state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..runner import wallclock
from ..sim.system import (SCALED_MULTI_CONFIG, SCALED_SINGLE_CONFIG,
                          SimSystem)
from ..workloads.benchmarks import trace_for
from ..workloads.mixes import workload_traces

#: cycles simulated per repeat in full / quick mode
FULL_CYCLES = 600_000
QUICK_CYCLES = 150_000
#: repeats per workload (best-of is reported)
FULL_REPEATS = 4
QUICK_REPEATS = 2

SCHEMA = "repro.bench/v1"


@dataclass(frozen=True)
class BenchWorkload:
    """One named, seeded simulator configuration to time."""

    name: str
    build: Callable[[], SimSystem]


def _build_single() -> SimSystem:
    return SimSystem([trace_for("mcf", seed=7)],
                     config=SCALED_SINGLE_CONFIG)


def _build_mix4() -> SimSystem:
    return SimSystem(workload_traces(1, seed=7),
                     config=SCALED_MULTI_CONFIG)


WORKLOADS = (
    BenchWorkload("single", _build_single),
    BenchWorkload("mix4", _build_mix4),
)


def time_workload(workload: BenchWorkload, cycles: int,
                  repeats: int) -> Dict:
    """Time ``repeats`` fresh runs of ``workload``; report the best.

    Each repeat constructs a fresh system (so caches, heaps and stats
    start cold) and times only :meth:`SimSystem.run`.  The event count is
    identical across repeats -- the simulation is deterministic -- so the
    best wall time gives the peak events/sec the kernel can sustain.
    """
    times: List[float] = []
    events = 0
    for _ in range(repeats):
        system = workload.build()
        start = wallclock.now()
        system.run(cycles)
        elapsed = wallclock.now() - start
        times.append(elapsed)
        events = system.engine.events_executed
    best = min(times)
    return {
        "cycles": cycles,
        "repeats": repeats,
        "events_executed": events,
        "wall_seconds": round(best, 6),
        "wall_seconds_all": [round(t, 6) for t in times],
        "events_per_second": round(events / best, 1) if best > 0 else None,
    }


def run_benchmarks(quick: bool = False,
                   workload_names: Optional[List[str]] = None) -> Dict:
    """Run the selected workloads and return the result document."""
    cycles = QUICK_CYCLES if quick else FULL_CYCLES
    repeats = QUICK_REPEATS if quick else FULL_REPEATS
    selected = [w for w in WORKLOADS
                if workload_names is None or w.name in workload_names]
    if not selected:
        known = [w.name for w in WORKLOADS]
        raise ValueError(f"no matching workloads; known: {known}")
    results = {w.name: time_workload(w, cycles, repeats) for w in selected}
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "workloads": results,
    }


def compare_to_baseline(results: Dict, baseline: Dict,
                        max_regression: float) -> Dict:
    """Compare events/sec against a baseline document.

    Returns a comparison record per shared workload with the fractional
    change and a pass/fail flag; a workload fails when its events/sec
    dropped more than ``max_regression`` (e.g. ``0.30``) below baseline.
    Missing workloads on either side are skipped, not failed -- a renamed
    workload should not brick CI until the baseline is regenerated.
    """
    comparisons = {}
    base_workloads = baseline.get("workloads", {})
    for name, result in results["workloads"].items():
        base = base_workloads.get(name)
        if base is None or not base.get("events_per_second"):
            continue
        base_eps = base["events_per_second"]
        cur_eps = result["events_per_second"] or 0.0
        change = (cur_eps - base_eps) / base_eps
        comparisons[name] = {
            "baseline_events_per_second": base_eps,
            "events_per_second": cur_eps,
            "change": round(change, 4),
            "ok": change >= -max_regression,
        }
    return {
        "max_regression": max_regression,
        "workloads": comparisons,
        "ok": all(c["ok"] for c in comparisons.values()),
    }


def with_history(document: Dict, previous: Optional[Dict],
                 label: str) -> Dict:
    """Append this run to the committed trajectory and carry it forward.

    ``BENCH_sim.json`` doubles as a performance log: each labelled run
    (``--label``) appends a compact entry -- label, mode, and per-workload
    events/sec -- to a ``history`` list preserved from the previous
    document, so the repo's committed copy records how simulator
    throughput moved across changes, not just the latest number.  The
    ``pre_change_baseline`` block (the hand-measured pre-fast-path
    reference) is carried forward verbatim.
    """
    history = list(previous.get("history", [])) if previous else []
    history.append({
        "label": label,
        "mode": document["mode"],
        "workloads": {
            name: {
                "events_executed": result["events_executed"],
                "events_per_second": result["events_per_second"],
                "wall_seconds": result["wall_seconds"],
            }
            for name, result in document["workloads"].items()
        },
    })
    merged = dict(document, history=history)
    if previous and "pre_change_baseline" in previous:
        merged.setdefault("pre_change_baseline",
                          previous["pre_change_baseline"])
    return merged


def load_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def dump_json(document: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
