"""Simulator throughput benchmarks (``python -m repro.bench``).

This package measures the *simulator's* speed -- events per wall-clock
second and wall time per run -- not the simulated system's performance.
It exists so that event-kernel changes can be judged against a committed
baseline: the CI perf-smoke job runs ``python -m repro.bench --quick``
and fails when events/sec regresses more than a tolerance against
``benchmarks/perf/baseline.json``.

Two seeded workloads cover the two main simulation shapes:

* ``single`` -- one ``mcf``-profile core on the scaled single-program
  configuration (small LLC, one shaper port).
* ``mix4``   -- the four-core workload mix 1 on the scaled multi-program
  configuration (shared LLC, four ports, FCFS fallback scheduler).

Both are fully deterministic (fixed profiles, fixed seeds), so event
counts are reproducible run to run; only wall time varies.  Wall-clock
reads go through :mod:`repro.runner.wallclock`, the repo's single
sanctioned real-time access point, and never flow into simulation state.
"""

from __future__ import annotations

import cProfile
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..runner import wallclock
from ..sim.system import (SCALED_MULTI_CONFIG, SCALED_SINGLE_CONFIG,
                          SimSystem)
from ..workloads.benchmarks import trace_for
from ..workloads.mixes import workload_traces

#: cycles simulated per repeat in full / quick mode
FULL_CYCLES = 600_000
QUICK_CYCLES = 150_000
#: repeats per workload (best-of is reported)
FULL_REPEATS = 4
QUICK_REPEATS = 2

SCHEMA = "repro.bench/v1"


@dataclass(frozen=True)
class BenchWorkload:
    """One named, seeded simulator configuration to time."""

    name: str
    #: builds a fresh system; accepts an optional kernel override so
    #: ``--verify-kernels`` can pin both engines explicitly
    build: Callable[..., SimSystem]


def _build_single(kernel: Optional[str] = None) -> SimSystem:
    config = SCALED_SINGLE_CONFIG if kernel is None \
        else replace(SCALED_SINGLE_CONFIG, kernel=kernel)
    return SimSystem([trace_for("mcf", seed=7)], config=config)


def _build_mix4(kernel: Optional[str] = None) -> SimSystem:
    config = SCALED_MULTI_CONFIG if kernel is None \
        else replace(SCALED_MULTI_CONFIG, kernel=kernel)
    return SimSystem(workload_traces(1, seed=7), config=config)


WORKLOADS = (
    BenchWorkload("single", _build_single),
    BenchWorkload("mix4", _build_mix4),
)


def time_workload(workload: BenchWorkload, cycles: int,
                  repeats: int) -> Dict:
    """Time ``repeats`` fresh runs of ``workload``; report the best.

    Each repeat constructs a fresh system (so caches, heaps and stats
    start cold) and times only :meth:`SimSystem.run`.  The event count is
    identical across repeats -- the simulation is deterministic -- so the
    best wall time gives the peak events/sec the kernel can sustain.
    """
    times: List[float] = []
    events = 0
    for _ in range(repeats):
        system = workload.build()
        start = wallclock.now()
        system.run(cycles)
        elapsed = wallclock.now() - start
        times.append(elapsed)
        events = system.engine.events_executed
    best = min(times)
    return {
        "cycles": cycles,
        "repeats": repeats,
        "events_executed": events,
        "wall_seconds": round(best, 6),
        "wall_seconds_all": [round(t, 6) for t in times],
        "events_per_second": round(events / best, 1) if best > 0 else None,
    }


def _select(workload_names: Optional[List[str]]) -> List[BenchWorkload]:
    selected = [w for w in WORKLOADS
                if workload_names is None or w.name in workload_names]
    if not selected:
        known = [w.name for w in WORKLOADS]
        raise ValueError(f"no matching workloads; known: {known}")
    return selected


def run_benchmarks(quick: bool = False,
                   workload_names: Optional[List[str]] = None,
                   repeats: Optional[int] = None) -> Dict:
    """Run the selected workloads and return the result document.

    ``repeats`` overrides the mode's default repeat count (``--repeat N``
    on the CLI): more repeats tighten the best-of estimate on noisy
    machines without touching the committed cycle counts.
    """
    cycles = QUICK_CYCLES if quick else FULL_CYCLES
    if repeats is None:
        repeats = QUICK_REPEATS if quick else FULL_REPEATS
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    selected = _select(workload_names)
    results = {w.name: time_workload(w, cycles, repeats) for w in selected}
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "workloads": results,
    }


#: ``(path fragment, function prefix, subsystem)`` attribution rules for
#: ``--breakdown``; first match wins.  ``batched.py`` hosts fused methods
#: of three different components, so its entries discriminate on the
#: function name before the module rules apply.
_BREAKDOWN_RULES: Tuple[Tuple[str, Optional[str], str], ...] = (
    ("sim/batched", "_run", "core"),
    ("sim/batched", "lookup", "llc"),
    ("sim/batched", None, "memctrl+dram"),
    ("sim/wheel", None, "engine"),
    ("sim/engine", None, "engine"),
    ("sim/core_model", None, "core"),
    ("sim/ooo_core", None, "core"),
    ("sim/cache", None, "core"),
    ("sim/llc", None, "llc"),
    ("sim/noc", None, "llc"),
    ("sim/memctrl", None, "memctrl+dram"),
    ("dram/", None, "memctrl+dram"),
    ("sched/", None, "memctrl+dram"),
    ("core/", None, "shaper"),
    ("sim/stats", None, "stats"),
    ("sim/system", None, "system"),
    ("sim/request", None, "core"),
)


def _classify(filename: str, funcname: str) -> str:
    path = filename.replace("\\", "/")
    for fragment, prefix, subsystem in _BREAKDOWN_RULES:
        if fragment in path and (prefix is None
                                 or funcname.startswith(prefix)):
            return subsystem
    return "other"


def breakdown_workload(workload: BenchWorkload, cycles: int) -> Dict:
    """Attribute one profiled run's self-time to simulator subsystems.

    Runs the workload once under :mod:`cProfile` and buckets every
    function's *inline* time (excluding callees, so buckets sum to the
    profiled total) into core / llc / memctrl+dram / engine / shaper /
    stats / system / other.  Profiled time overstates call-heavy code, so
    the value is the *ranking* between subsystems, not absolute seconds;
    the timing numbers stay profiler-free.
    """
    system = workload.build()
    profiler = cProfile.Profile()
    profiler.enable()
    system.run(cycles)
    profiler.disable()
    totals: Dict[str, float] = {}
    total = 0.0
    for entry in profiler.getstats():
        code = entry.code
        if isinstance(code, str):
            filename, funcname = "~", code
        else:
            filename, funcname = code.co_filename, code.co_name
        subsystem = _classify(filename, funcname)
        totals[subsystem] = totals.get(subsystem, 0.0) + entry.inlinetime
        total += entry.inlinetime
    subsystems = {
        name: {
            "seconds": round(seconds, 6),
            "fraction": round(seconds / total, 4) if total > 0 else None,
        }
        for name, seconds in sorted(totals.items(),
                                    key=lambda item: -item[1])
    }
    return {
        "cycles": cycles,
        "profiled_seconds": round(total, 6),
        "subsystems": subsystems,
    }


def verify_kernels(quick: bool = False,
                   workload_names: Optional[List[str]] = None) -> Dict:
    """Run every selected workload under both event kernels and compare.

    Each workload is built twice -- ``kernel="heap"`` (the contracts-ready
    oracle engine) and ``kernel="batched"`` (wheel + fused fast paths) --
    run for the mode's cycle count, and the full statistics fingerprints
    (:meth:`~repro.sim.stats.SystemStats.fingerprint`) must be
    bit-identical.  This is the golden-fingerprint equivalence check at
    benchmark scale; CI runs it inside the perf-smoke job so a kernel
    divergence fails the build before any throughput number is trusted.
    """
    cycles = QUICK_CYCLES if quick else FULL_CYCLES
    workloads = {}
    for workload in _select(workload_names):
        fingerprints = {}
        for kernel in ("heap", "batched"):
            system = workload.build(kernel)
            system.run(cycles)
            fingerprints[kernel] = system.stats.fingerprint()
        workloads[workload.name] = {
            "cycles": cycles,
            "fingerprints": fingerprints,
            "ok": fingerprints["heap"] == fingerprints["batched"],
        }
    return {
        "workloads": workloads,
        "ok": all(entry["ok"] for entry in workloads.values()),
    }


def compare_to_baseline(results: Dict, baseline: Dict,
                        max_regression: float) -> Dict:
    """Compare events/sec against a baseline document.

    Returns a comparison record per shared workload with the fractional
    change and a pass/fail flag; a workload fails when its events/sec
    dropped more than ``max_regression`` (e.g. ``0.30``) below baseline.
    Missing workloads on either side are skipped, not failed -- a renamed
    workload should not brick CI until the baseline is regenerated.
    """
    comparisons = {}
    base_workloads = baseline.get("workloads", {})
    for name, result in results["workloads"].items():
        base = base_workloads.get(name)
        if base is None or not base.get("events_per_second"):
            continue
        base_eps = base["events_per_second"]
        cur_eps = result["events_per_second"] or 0.0
        change = (cur_eps - base_eps) / base_eps
        comparisons[name] = {
            "baseline_events_per_second": base_eps,
            "events_per_second": cur_eps,
            "change": round(change, 4),
            "ok": change >= -max_regression,
        }
    return {
        "max_regression": max_regression,
        "workloads": comparisons,
        "ok": all(c["ok"] for c in comparisons.values()),
    }


def with_history(document: Dict, previous: Optional[Dict],
                 label: str) -> Dict:
    """Append this run to the committed trajectory and carry it forward.

    ``BENCH_sim.json`` doubles as a performance log: each labelled run
    (``--label``) appends a compact entry -- label, mode, and per-workload
    events/sec -- to a ``history`` list preserved from the previous
    document, so the repo's committed copy records how simulator
    throughput moved across changes, not just the latest number.  The
    ``pre_change_baseline`` block (the hand-measured pre-fast-path
    reference) is carried forward verbatim.
    """
    history = list(previous.get("history", [])) if previous else []
    history.append({
        "label": label,
        "mode": document["mode"],
        "workloads": {
            name: {
                "events_executed": result["events_executed"],
                "events_per_second": result["events_per_second"],
                "wall_seconds": result["wall_seconds"],
            }
            for name, result in document["workloads"].items()
        },
    })
    merged = dict(document, history=history)
    if previous and "pre_change_baseline" in previous:
        merged.setdefault("pre_change_baseline",
                          previous["pre_change_baseline"])
    return merged


def load_json(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def dump_json(document: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
