"""Schedule- and rule-based bin auto-scaling (Section III-F).

The paper sketches the Cloud-side control plane: "Schedule-based
auto-scaling allows users to change bin configuration at a given time,
such as 'add n credits to bin m between 8AM to 6PM each day'.  Rule-based
mechanisms allow users to define triggers by specifying bin
reconfiguration thresholds and actions, such as 'run Genetic Algorithm to
reconfigure bins when the application's objective function is below a
threshold value'."

This module implements both:

* :class:`ScheduleRule` -- between ``start`` and ``end`` (cycles, standing
  in for wall-clock hours), apply a credit delta to one bin;
* :class:`TriggerRule` -- when a per-epoch metric crosses a threshold,
  fire an action (a config transform, or an arbitrary callback such as
  kicking the online GA);
* :class:`AutoScaler` -- evaluates the rules each epoch against a live
  system and rewrites the target core's shaper configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.bins import BinConfig
from ..core.shaper import MittsShaper
from ..sim.system import SimSystem


@dataclass(frozen=True, slots=True)
class ScheduleRule:
    """'Add ``delta`` credits to ``bin_index`` between start and end.'"""

    start: int
    end: int
    bin_index: int
    delta: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError("need 0 <= start < end")

    def active(self, now: int) -> bool:
        return self.start <= now < self.end

    def apply(self, base: BinConfig) -> BinConfig:
        value = base.credits[self.bin_index] + self.delta
        value = max(0, min(base.spec.max_credits, value))
        return base.with_credits(self.bin_index, value)


#: metric names the trigger evaluator computes per epoch
TRIGGER_METRICS = ("request_rate", "stall_fraction", "work_rate")


@dataclass(frozen=True, slots=True)
class TriggerRule:
    """'When ``metric`` crosses ``threshold``, do ``action``.'

    ``direction`` is "below" or "above".  ``action`` receives the current
    :class:`BinConfig` and returns the new one; pass ``callback`` instead
    (or additionally) for side effects like starting a GA CONFIG_PHASE.
    ``cooldown`` epochs must pass between firings.
    """

    metric: str
    threshold: float
    direction: str = "below"
    action: Optional[Callable[[BinConfig], BinConfig]] = None
    callback: Optional[Callable[[], None]] = None
    cooldown: int = 4

    def __post_init__(self) -> None:
        if self.metric not in TRIGGER_METRICS:
            raise ValueError(f"unknown metric {self.metric!r}; known: "
                             f"{TRIGGER_METRICS}")
        if self.direction not in ("below", "above"):
            raise ValueError("direction must be 'below' or 'above'")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.action is None and self.callback is None:
            raise ValueError("a trigger needs an action or a callback")

    def crossed(self, value: float) -> bool:
        if self.direction == "below":
            return value < self.threshold
        return value > self.threshold


class AutoScaler:
    """Evaluates a tenant's rules each epoch and rewrites its shaper."""

    __slots__ = ("system", "core_id", "base_config", "schedules",
                 "triggers", "epoch", "_snapshot", "_trigger_cooldowns",
                 "events", "_installed")

    def __init__(self, system: SimSystem, core_id: int,
                 base_config: BinConfig,
                 schedules: Optional[List[ScheduleRule]] = None,
                 triggers: Optional[List[TriggerRule]] = None,
                 epoch: int = 5_000) -> None:
        if epoch < 1:
            raise ValueError("epoch must be >= 1")
        if not 0 <= core_id < len(system.cores):
            raise ValueError("core_id out of range")
        self.system = system
        self.core_id = core_id
        self.base_config = base_config
        self.schedules = list(schedules or [])
        self.triggers = list(triggers or [])
        self.epoch = epoch
        self._snapshot = system.stats.cores[core_id].snapshot()
        self._trigger_cooldowns: Dict[int, int] = {}
        #: log of (cycle, reason) reconfiguration events
        self.events: List[tuple] = []
        self._installed: Optional[BinConfig] = None
        system.every(epoch, self._tick)

    # ------------------------------------------------------------------

    def _metrics(self) -> Dict[str, float]:
        core = self.system.stats.cores[self.core_id]
        snap = core.snapshot()
        delta = {key: snap[key] - self._snapshot[key] for key in snap}
        self._snapshot = snap
        stall = delta["shaper_stall_cycles"] + delta["memory_stall_cycles"]
        return {
            "request_rate": delta["dram_requests"] / self.epoch,
            "stall_fraction": min(1.0, stall / self.epoch),
            "work_rate": delta["work_cycles"] / self.epoch,
        }

    def _tick(self) -> None:
        now = self.system.engine.now
        metrics = self._metrics()
        config = self.base_config
        reasons = []

        for rule in self.schedules:
            if rule.active(now):
                config = rule.apply(config)
                reasons.append(f"schedule(bin {rule.bin_index} "
                               f"{rule.delta:+d})")

        for index, rule in enumerate(self.triggers):
            cooling = self._trigger_cooldowns.get(index, 0)
            if cooling > 0:
                self._trigger_cooldowns[index] = cooling - 1
                continue
            if rule.crossed(metrics[rule.metric]):
                if rule.action is not None:
                    config = rule.action(config)
                if rule.callback is not None:
                    rule.callback()
                self._trigger_cooldowns[index] = rule.cooldown
                reasons.append(f"trigger({rule.metric} {rule.direction} "
                               f"{rule.threshold})")

        if config.credits != (self._installed.credits
                              if self._installed else
                              self._current_credits()):
            self._install(config, now)
            self.events.append((now, "; ".join(reasons) or "revert"))

    def _current_credits(self):
        limiter = self.system.limiter(self.core_id)
        if isinstance(limiter, MittsShaper):
            return limiter.config.credits
        return None

    def _install(self, config: BinConfig, now: int) -> None:
        limiter = self.system.limiter(self.core_id)
        if isinstance(limiter, MittsShaper):
            limiter.reconfigure(config, now=now, reset_credits=False)
            self.system.ports[self.core_id].kick()
        else:
            self.system.set_limiter(self.core_id, MittsShaper(config))
        self._installed = config
