"""A simple bin-credit marketplace for an IaaS provider.

The paper leaves pricing "up to software and the market" (Section III-B1)
but requires that bins be priced at least commensurate with the bandwidth
they provide, with low-inter-arrival bins costing more.  This module
provides a concrete market: the provider offers a chip-wide supply of
credits per bin (the provisioned off-chip bandwidth, Section III-C), and
customers submit demand vectors; credits are awarded greedily by
willingness-to-pay per credit, giving the economically efficient
allocation of Section II-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.bins import BinConfig, BinSpec
from ..core.pricing import credit_price
from .customer import Customer


@dataclass
class Bid:
    """A customer's demand for one bin: quantity plus per-credit value."""

    customer: str
    bin_index: int
    quantity: int
    per_credit_value: float

    def __post_init__(self) -> None:
        if self.quantity < 0:
            raise ValueError("quantity must be non-negative")
        if self.per_credit_value < 0:
            raise ValueError("per-credit value must be non-negative")


@dataclass
class MarketOutcome:
    """Result of clearing: per-customer configs, spend, and leftovers."""

    allocations: Dict[str, BinConfig]
    spend: Dict[str, float]
    unsold: List[int]
    revenue: float = 0.0


class CreditMarket:
    """Greedy price-priority clearing of bin-credit supply."""

    def __init__(self, spec: BinSpec, supply: Sequence[int]) -> None:
        if len(supply) != spec.num_bins:
            raise ValueError("one supply entry per bin required")
        if any(s < 0 for s in supply):
            raise ValueError("supply must be non-negative")
        self.spec = spec
        self.supply = list(supply)

    def floor_price(self, bin_index: int) -> float:
        """Provider's reserve price: the Section IV-G1 pricing scheme."""
        return credit_price(self.spec, bin_index)

    def clear(self, customers: Sequence[Customer],
              bids: Sequence[Bid]) -> MarketOutcome:
        """Allocate supply to the highest-value bids above reserve.

        Customers never spend beyond their budget; partially fillable bids
        are filled as far as budget and supply allow.
        """
        known = {customer.name for customer in customers}
        for bid in bids:
            if bid.customer not in known:
                raise ValueError(f"bid from unknown customer {bid.customer!r}")
            if not 0 <= bid.bin_index < self.spec.num_bins:
                raise ValueError(f"bid for invalid bin {bid.bin_index}")

        remaining = list(self.supply)
        budgets = {c.name: c.budget for c in customers}
        awarded: Dict[str, List[int]] = {
            c.name: [0] * self.spec.num_bins for c in customers}
        spend: Dict[str, float] = {c.name: 0.0 for c in customers}
        revenue = 0.0

        # Highest willingness-to-pay first; stable tie-break by name.
        order = sorted(bids, key=lambda b: (-b.per_credit_value,
                                            b.customer, b.bin_index))
        for bid in order:
            price = self.floor_price(bid.bin_index)
            if bid.per_credit_value < price:
                continue  # below reserve: provider keeps the credits
            can_afford = int(budgets[bid.customer] // price) \
                if price > 0 else bid.quantity
            take = min(bid.quantity, remaining[bid.bin_index], can_afford)
            if take <= 0:
                continue
            remaining[bid.bin_index] -= take
            cost = take * price
            budgets[bid.customer] -= cost
            spend[bid.customer] += cost
            revenue += cost
            awarded[bid.customer][bid.bin_index] += take

        allocations = {
            name: BinConfig(spec=self.spec, credits=tuple(vector))
            for name, vector in awarded.items()}
        for customer in customers:
            customer.purchased = allocations[customer.name]
        return MarketOutcome(allocations=allocations, spend=spend,
                             unsold=remaining, revenue=revenue)


def demand_to_bids(customer: Customer, desired: BinConfig,
                   markup: float = 1.2) -> List[Bid]:
    """Turn a desired distribution into bids at reserve-price x markup."""
    if markup <= 0:
        raise ValueError("markup must be positive")
    bids = []
    for index, quantity in enumerate(desired.credits):
        if quantity <= 0:
            continue
        value = credit_price(desired.spec, index) * markup
        bids.append(Bid(customer=customer.name, bin_index=index,
                        quantity=quantity, per_credit_value=value))
    return bids
