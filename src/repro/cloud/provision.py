"""Provisioning strategies: MITTS distributions vs static bandwidth.

Implements the three comparisons of Sections IV-F and IV-G:

* ``best_static_config`` -- the optimal *single-bin* configuration (one
  fixed request rate), found by searching all single-bin configurations
  for the highest objective value: the paper's "optimal static bandwidth
  provisioning" baseline of Figure 18.
* ``even_split_configs`` / ``heterogeneous_static_configs`` -- the static
  even and optimised heterogeneous splits of Figure 16.
* ``perf_per_cost`` -- work per core-equivalent price, the economic
  efficiency measure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..core.bins import BinConfig, BinSpec
from ..core.config_space import static_configs
from ..core.pricing import config_price_core_equivalents
from ..core.shaper import MittsShaper
from ..sim.system import SimSystem, SystemConfig


def run_with_configs(traces: Sequence, configs: Sequence[BinConfig],
                     system_config: SystemConfig, cycles: int,
                     scheduler=None):
    """Simulate ``traces`` with one MITTS shaper per core (replenishment
    phases staggered per core)."""
    num_cores = max(1, len(configs))
    limiters = [MittsShaper(config,
                            phase=i * config.replenish_period() // num_cores)
                for i, config in enumerate(configs)]
    system = SimSystem(traces, config=system_config, limiters=limiters,
                       scheduler=scheduler)
    return system.run(cycles)


def perf_per_cost(work: float, config: BinConfig,
                  core_cost: float = 1.0) -> float:
    """Work per total price (CPU + purchased distribution)."""
    price = core_cost + config_price_core_equivalents(config)
    return work / max(price, 1e-9)


def best_static_config(trace, system_config: SystemConfig, cycles: int,
                       spec: Optional[BinSpec] = None,
                       objective: Optional[Callable[[float, BinConfig],
                                                    float]] = None,
                       max_credits: int = 64
                       ) -> Tuple[BinConfig, float]:
    """Search all single-bin configurations for the best objective value.

    ``objective(work, config)`` defaults to performance-per-cost; Figure
    18's baseline is exactly this search ("we find the optimal fixed
    inter-arrival time configuration with highest performance-per-cost").
    Returns the winning configuration and its objective value.
    """
    if spec is None:
        spec = BinSpec()
    if objective is None:
        objective = perf_per_cost
    best: Tuple[Optional[BinConfig], float] = (None, float("-inf"))
    for config in static_configs(spec, max_credits=max_credits):
        stats = run_with_configs([trace], [config], system_config, cycles)
        work = stats.cores[0].work_cycles
        score = objective(work, config)
        if score > best[1]:
            best = (config, score)
    if best[0] is None:
        raise RuntimeError("static configuration search found nothing")
    return best


def even_split_configs(spec: BinSpec, num_cores: int,
                       total_credits: int,
                       bin_index: Optional[int] = None
                       ) -> List[BinConfig]:
    """Static even split: every core gets the same single-rate allocation."""
    if bin_index is None:
        bin_index = spec.num_bins // 2
    per_core = max(1, total_credits // num_cores)
    return [BinConfig.single_bin(bin_index, per_core, spec)
            for _ in range(num_cores)]


def heterogeneous_static_configs(spec: BinSpec, demands: Sequence[float],
                                 total_credits: int,
                                 bin_index: Optional[int] = None
                                 ) -> List[BinConfig]:
    """Static heterogeneous split: per-core shares proportional to demand.

    ``demands`` are each program's measured alone request rates; the
    optimal static heterogeneous allocation of Figure 16 gives each
    program bandwidth proportional to what it can actually use.
    """
    if bin_index is None:
        bin_index = spec.num_bins // 2
    total_demand = sum(demands)
    if total_demand <= 0:
        raise ValueError("demands must sum to a positive value")
    configs = []
    for demand in demands:
        share = max(1, round(total_credits * demand / total_demand))
        share = min(share, spec.max_credits)
        configs.append(BinConfig.single_bin(bin_index, share, spec))
    return configs
