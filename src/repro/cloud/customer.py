"""IaaS customers: applications with budgets and utility functions.

Section II-B's premise: resources should flow to whoever values them most,
and customers should be able to buy exactly the quantity *and
inter-arrival distribution* of bandwidth their application needs.  A
:class:`Customer` couples a benchmark (its traffic character), a budget in
core-equivalents, and a utility function over achieved performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.bins import BinConfig


def linear_utility(work: float) -> float:
    """Utility proportional to work done (throughput buyer)."""
    return work


def deadline_utility(threshold: float) -> Callable[[float], float]:
    """Step-ish utility: full value at/above ``threshold`` work, scaled
    below it (a latency/deadline-sensitive buyer)."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")

    def utility(work: float) -> float:
        if work >= threshold:
            return threshold
        return work * 0.5

    return utility


@dataclass
class Customer:
    """One tenant bidding for a memory-traffic distribution."""

    name: str
    benchmark: str
    #: maximum spend, in core-equivalents (1 core == 1.6 GB/s)
    budget: float
    utility: Callable[[float], float] = linear_utility
    #: the distribution the customer ends up purchasing
    purchased: Optional[BinConfig] = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be non-negative")

    def value_of(self, work: float) -> float:
        return self.utility(work)
