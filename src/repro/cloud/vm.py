"""Per-VM traffic shaping: one purchased distribution across many vCPUs.

The paper places the shaper "within a core or after a VM's LLC" and
Section IV-H shows credit pools *shared* across threads beat per-thread
slices.  :class:`VirtualMachine` packages that for the IaaS layer: a
tenant's vCPUs share a single MITTS shaper holding the distribution the
tenant purchased, and context-swap helpers expose the register-level
state the OS would save/restore (Section IV-H: "the MITTS bin
configurations are exposed in a set of configuration registers [that] can
be swapped as part of the thread state").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.bins import BinConfig
from ..core.shaper import MittsShaper
from ..sim.system import SimSystem, SystemConfig


@dataclass
class MittsRegisterState:
    """The architectural state the OS swaps on a VM/thread switch."""

    credits: List[int]
    replenish_values: List[int]
    next_boundary: int

    @classmethod
    def capture(cls, shaper: MittsShaper) -> "MittsRegisterState":
        return cls(credits=list(shaper.state.counts),
                   replenish_values=list(shaper.config.credits),
                   next_boundary=shaper.replenisher.next_boundary())

    def restore(self, shaper: MittsShaper) -> None:
        if len(self.credits) != len(shaper.state.counts):
            raise ValueError("register state has wrong bin count")
        shaper.state.counts = list(self.credits)
        shaper.replenisher._next = self.next_boundary


@dataclass
class VirtualMachine:
    """A tenant VM: named vCPU traces sharing one purchased shaper."""

    name: str
    traces: Sequence
    config: BinConfig
    shaper: Optional[MittsShaper] = field(default=None)

    def __post_init__(self) -> None:
        if not self.traces:
            raise ValueError(f"VM {self.name!r} needs at least one vCPU")
        if self.shaper is None:
            self.shaper = MittsShaper(self.config)

    @property
    def vcpus(self) -> int:
        return len(self.traces)

    def swap_out(self) -> MittsRegisterState:
        """Capture the shaper registers (VM being descheduled)."""
        return MittsRegisterState.capture(self.shaper)

    def swap_in(self, state: MittsRegisterState) -> None:
        """Restore previously captured registers."""
        state.restore(self.shaper)


def build_vm_system(vms: Sequence[VirtualMachine],
                    system_config: SystemConfig,
                    scheduler=None) -> SimSystem:
    """Assemble a system where each VM's vCPUs share its shaper.

    Returns the :class:`SimSystem`; core ``i`` of the system belongs to
    the VM found via :func:`vm_core_ranges`.
    """
    traces = []
    limiters = []
    for vm in vms:
        for trace in vm.traces:
            traces.append(trace)
            limiters.append(vm.shaper)
    return SimSystem(traces, config=system_config, limiters=limiters,
                     scheduler=scheduler)


def vm_core_ranges(vms: Sequence[VirtualMachine]) -> Dict[str, range]:
    """Core-id range owned by each VM in a :func:`build_vm_system` system."""
    ranges: Dict[str, range] = {}
    start = 0
    for vm in vms:
        ranges[vm.name] = range(start, start + vm.vcpus)
        start += vm.vcpus
    return ranges


def vm_work(vms: Sequence[VirtualMachine], stats) -> Dict[str, int]:
    """Per-VM work retired from a finished run's stats."""
    ranges = vm_core_ranges(vms)
    return {name: sum(stats.cores[i].work_cycles for i in cores)
            for name, cores in ranges.items()}
