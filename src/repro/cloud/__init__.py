"""IaaS economics: customers, bin-credit market, provisioning strategies."""

from .autoscale import AutoScaler, ScheduleRule, TriggerRule
from .customer import Customer, deadline_utility, linear_utility
from .market import Bid, CreditMarket, MarketOutcome, demand_to_bids
from .vm import (MittsRegisterState, VirtualMachine, build_vm_system,
                 vm_core_ranges, vm_work)
from .provision import (best_static_config, even_split_configs,
                        heterogeneous_static_configs, perf_per_cost,
                        run_with_configs)

__all__ = [
    "AutoScaler",
    "Bid",
    "CreditMarket",
    "Customer",
    "MarketOutcome",
    "ScheduleRule",
    "TriggerRule",
    "MittsRegisterState",
    "VirtualMachine",
    "best_static_config",
    "build_vm_system",
    "deadline_utility",
    "demand_to_bids",
    "even_split_configs",
    "heterogeneous_static_configs",
    "linear_utility",
    "perf_per_cost",
    "run_with_configs",
    "vm_core_ranges",
    "vm_work",
]
