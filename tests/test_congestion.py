"""Tests for the congestion-feedback extension (Section III-C future work)."""

import pytest

from repro.core.bins import BinConfig
from repro.core.congestion import CongestionController
from repro.core.shaper import MittsShaper
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.benchmarks import trace_for


def make_system(num=4, credits=None):
    traces = [trace_for(name, seed=i + 1) for i, name in enumerate(
        ["mcf", "libquantum", "omnetpp", "h264ref"][:num])]
    config = credits or BinConfig.unlimited()
    limiters = [MittsShaper(config) for _ in traces]
    return SimSystem(traces, config=SCALED_MULTI_CONFIG,
                     limiters=limiters)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(epoch=0),
        dict(scale_down=1.5),
        dict(recover=0.9),
        dict(floor=0.0),
        dict(high_water=4, low_water=8),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CongestionController(make_system(), **kwargs)


class TestBehaviour:
    def test_scales_down_under_congestion(self):
        system = make_system()
        controller = CongestionController(system, epoch=1_000,
                                          high_water=6, low_water=2)
        system.run(60_000)
        assert controller.scale_down_events > 0
        assert controller.current_scale < 1.0

    def test_shapers_actually_throttled(self):
        system = make_system()
        CongestionController(system, epoch=1_000, high_water=6,
                             low_water=2)
        system.run(60_000)
        limiter = system.limiter(0)
        assert limiter.config.total_credits \
            < BinConfig.unlimited().total_credits

    def test_never_exceeds_nominal(self):
        nominal = BinConfig.from_credits([8, 4, 2, 2, 1, 1, 1, 1, 1, 1])
        system = make_system(credits=nominal)
        controller = CongestionController(system, epoch=1_000,
                                          high_water=4, low_water=1)
        system.run(40_000)
        for core_id in range(4):
            limiter = system.limiter(core_id)
            assert limiter.config.total_credits <= nominal.total_credits

    def test_recovers_when_quiet(self):
        # A light mix that never congests: scale must stay at 1.
        traces = [trace_for("sjeng"), trace_for("gobmk", seed=2)]
        limiters = [MittsShaper(BinConfig.unlimited()) for _ in traces]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           limiters=limiters)
        controller = CongestionController(system, epoch=1_000,
                                          high_water=30, low_water=5)
        system.run(40_000)
        assert controller.current_scale == 1.0
        assert controller.scale_down_events == 0

    def test_non_mitts_limiters_untouched(self):
        from repro.core.limiter import NoLimiter
        traces = [trace_for("mcf"), trace_for("libquantum", seed=2)]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           limiters=[NoLimiter(),
                                     MittsShaper(BinConfig.unlimited())])
        CongestionController(system, epoch=1_000, high_water=4,
                             low_water=1)
        system.run(30_000)
        assert isinstance(system.limiter(0), NoLimiter)
