"""Tests for the online GA tuner (Figure 10 state machine)."""

import pytest

from repro.core.shaper import MittsShaper
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.tuning.online import OnlineGaTuner, _BlockedLimiter
from repro.workloads.benchmarks import trace_for


def make_system(benchmarks=("gcc", "mcf")):
    traces = [trace_for(name, seed=i + 1)
              for i, name in enumerate(benchmarks)]
    return SimSystem(traces, config=SCALED_MULTI_CONFIG)


class TestLifecycle:
    def test_run_phase_reached(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=1_000, overhead_cycles=200)
        system.run(60_000)
        assert tuner.run_phase_started_at is not None
        assert tuner.best_genome is not None
        assert len(tuner.history) == 2

    def test_best_genome_installed_in_run_phase(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=1_000, overhead_cycles=0)
        system.run(60_000)
        for core_id, config in enumerate(tuner.best_genome):
            limiter = system.limiter(core_id)
            assert isinstance(limiter, MittsShaper)
            assert limiter.config.credits == config.credits

    def test_measurement_estimates_alone_rates(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=2_000)
        system.run(60_000)
        assert all(rate > 0 for rate in tuner.alone_rates)

    def test_config_phase_cycles_accounted(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=1_000, overhead_cycles=100)
        system.run(60_000)
        expected_min = (len(system.cores) + 2 * 4) * 1_000
        assert tuner.config_phase_cycles >= expected_min

    def test_software_overhead_counted(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=3, population=4,
                              epoch=1_000)
        system.run(80_000)
        assert tuner.software_invocations == 3

    def test_work_snapshot_at_run_phase(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=1_000)
        stats = system.run(60_000)
        assert tuner.work_at_run_phase is not None
        for snap, core in zip(tuner.work_at_run_phase, stats.cores):
            assert core.work_cycles >= snap


class TestPhaseBasedReconfiguration:
    def test_reconfigures_at_phase_boundary(self):
        system = make_system()
        tuner = OnlineGaTuner(system, generations=1, population=4,
                              epoch=500, overhead_cycles=0,
                              reconfigure_every=15_000)
        system.run(80_000)
        # More than one CONFIG_PHASE must have completed.
        assert tuner.software_invocations > 1


class TestObjectives:
    @pytest.mark.parametrize("objective", ["throughput", "fairness",
                                           "performance", "perf_per_cost"])
    def test_all_objectives_run(self, objective):
        system = make_system()
        tuner = OnlineGaTuner(system, objective=objective, generations=1,
                              population=3, epoch=800)
        system.run(30_000)
        assert tuner.best_genome is not None

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            OnlineGaTuner(make_system(), objective="speed")

    @pytest.mark.parametrize("kwargs", [
        dict(generations=0), dict(population=1), dict(epoch=50),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            OnlineGaTuner(make_system(), **kwargs)


class TestBlockedLimiter:
    def test_never_releases(self):
        limiter = _BlockedLimiter()
        assert limiter.earliest_issue(0) is None
        assert limiter.stall_forever()
        with pytest.raises(RuntimeError):
            limiter.issue(0)
