"""Tests for the MITTS+MISE hybrid builder and cross-policy wiring."""

import pytest

from repro.core.bins import BinConfig
from repro.core.shaper import MittsShaper
from repro.sched.hybrid import build_hybrid
from repro.sched.mise import MiseScheduler
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.mixes import workload_traces


class TestBuildHybrid:
    def test_returns_scheduler_and_shapers(self):
        configs = [BinConfig.unlimited()] * 4
        scheduler, limiters = build_hybrid(4, configs)
        assert isinstance(scheduler, MiseScheduler)
        assert len(limiters) == 4
        assert all(isinstance(l, MittsShaper) for l in limiters)

    def test_config_count_must_match(self):
        with pytest.raises(ValueError):
            build_hybrid(4, [BinConfig.unlimited()] * 3)

    def test_shaper_phases_staggered(self):
        config = BinConfig.from_credits([4] * 10)
        _, limiters = build_hybrid(4, [config] * 4)
        boundaries = {l.replenisher.next_boundary() for l in limiters}
        assert len(boundaries) > 1

    def test_hybrid_system_runs(self):
        traces = workload_traces(1)
        configs = [BinConfig.from_credits([8, 4, 2, 2, 1, 1, 1, 1, 1, 2])
                   for _ in traces]
        scheduler, limiters = build_hybrid(len(traces), configs)
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           scheduler=scheduler, limiters=limiters)
        stats = system.run(30_000)
        assert all(core.work_cycles > 0 for core in stats.cores)
        # Both mechanisms were active: shapers released and MISE serviced.
        assert sum(l.released for l in limiters) > 0
        assert sum(scheduler.serviced) > 0

    def test_custom_epoch_passed_through(self):
        scheduler, _ = build_hybrid(2, [BinConfig.unlimited()] * 2,
                                    epoch=500, interval=5_000)
        assert scheduler.epoch == 500
        assert scheduler.interval == 5_000
