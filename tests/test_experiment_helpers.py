"""Tests for the per-experiment helper functions (harness internals)."""

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.experiments import fig11_static_comparison as fig11
from repro.experiments import fig16_isolation as fig16
from repro.experiments import sec4h_threaded as sec4h
from repro.experiments.common import get_scale


class TestFig11Helpers:
    def test_constrained_spec_covers_static_interval(self):
        spec = fig11.constrained_spec()
        assert spec.center(spec.num_bins - 1) >= fig11.STATIC_INTERVAL

    def test_constraint_repair_hits_targets(self):
        spec = fig11.constrained_spec()
        raw = BinConfig(spec=spec, credits=tuple([10] * spec.num_bins))
        repaired = fig11.constraint_repair(raw)
        assert repaired.total_credits == fig11.TOTAL_CREDITS
        assert abs(repaired.average_interval() - fig11.STATIC_INTERVAL) \
            <= spec.interval_length

    def test_static_work_positive(self):
        assert fig11.static_work("sjeng", 10_000, seed=1) > 0


class TestFig16Helpers:
    def test_even_configs_identical(self):
        spec = fig16._spec()
        configs = fig16.even_configs(spec, 4, total_rate=0.02)
        assert len({c.credits for c in configs}) == 1

    def test_heterogeneous_configs_track_demand(self):
        spec = fig16._spec()
        configs = fig16.heterogeneous_configs(spec, [0.04, 0.005],
                                              total_rate=0.03)
        # The high-demand program's bin is faster (smaller index).
        fast_bin = configs[0].credits.index(
            max(configs[0].credits))
        slow_bin = configs[1].credits.index(
            max(configs[1].credits))
        assert fast_bin <= slow_bin

    def test_capped_repair_enforces_rate_cap(self):
        spec = fig16._spec()
        repair = fig16.capped_repair(total_rate=0.02, num_cores=4)
        greedy = BinConfig.single_bin(0, 32, spec)
        capped = repair(greedy)
        assert fig16._rate(capped) <= 2.0 * 0.02 / 4 + 1e-6

    def test_budgeted_objective_penalises_overshoot(self):
        spec = fig16._spec()

        def flat(stats, genome, evaluator):
            return 0.0

        wrapped = fig16.budgeted(flat, total_rate=0.01)
        over = [BinConfig.single_bin(0, 16, spec)] * 4  # 4/16 >> 0.01
        assert wrapped(None, over, None) < -1.0
        under = [BinConfig.single_bin(spec.num_bins - 1, 1, spec)]
        assert wrapped(None, under, None) == 0.0  # 1/304 < 0.01

    def test_bin_for_rate(self):
        spec = fig16._spec()
        fast = fig16._bin_for_rate(spec, rate=1.0 / spec.center(0))
        slow = fig16._bin_for_rate(
            spec, rate=1.0 / spec.center(spec.num_bins - 1))
        assert fast == 0
        assert slow == spec.num_bins - 1


class TestSec4hHelpers:
    def test_total_config_slices_evenly(self):
        sliced = sec4h.TOTAL_CONFIG.scaled(1.0 / sec4h.THREADS)
        assert sliced.total_credits * sec4h.THREADS \
            == sec4h.TOTAL_CONFIG.total_credits

    def test_shared_shaper_period_pinned(self):
        period = sec4h.TOTAL_CONFIG.replenish_period()
        shaper = sec4h._shaper(sec4h.TOTAL_CONFIG.scaled(0.25), period)
        assert shaper.replenisher.period == period


class TestScalePlumbing:
    def test_paper_scale_uses_paper_ga_parameters(self):
        from repro.tuning.ga import PAPER_GENERATIONS, PAPER_POPULATION
        scale = get_scale("paper")
        assert scale.ga_generations == PAPER_GENERATIONS
        assert scale.ga_population == PAPER_POPULATION

    def test_smoke_subset_is_strict_subset(self):
        smoke = get_scale("smoke")
        assert smoke.benchmark_subset is not None
        assert len(smoke.benchmark_subset) < 18
