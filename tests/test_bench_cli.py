"""CLI coverage for ``python -m repro.bench`` (golden-free).

Pins exit codes and the shape of the ``BENCH_sim.json`` document -- the
schema tag, per-workload keys, history append, baseline comparison
verdicts -- without asserting any machine-dependent throughput numbers.
Every invocation uses ``--quick --workload single`` with one repeat, so
the whole module times one small deterministic simulation a handful of
times.
"""

import json

import pytest

from repro.bench import (QUICK_CYCLES, SCHEMA, compare_to_baseline,
                         run_benchmarks, verify_kernels)
from repro.bench.__main__ import main as bench_main

FAST = ["--quick", "--workload", "single", "--repeat", "1"]


class TestTimingRun:
    def test_exit_zero_and_document_schema(self, tmp_path, capsys):
        out = tmp_path / "BENCH_sim.json"
        assert bench_main(FAST + ["--output", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "events/sec" in printed and f"wrote {out}" in printed

        document = json.loads(out.read_text())
        assert document["schema"] == SCHEMA
        assert document["mode"] == "quick"
        assert set(document["workloads"]) == {"single"}
        entry = document["workloads"]["single"]
        assert entry["cycles"] == QUICK_CYCLES
        assert entry["repeats"] == 1
        assert entry["events_executed"] > 0
        assert entry["wall_seconds"] > 0
        assert entry["events_per_second"] > 0
        assert len(entry["wall_seconds_all"]) == 1

    def test_no_output_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert bench_main(FAST + ["--no-output"]) == 0
        assert list(tmp_path.iterdir()) == []

    def test_label_appends_history(self, tmp_path):
        out = tmp_path / "BENCH_sim.json"
        assert bench_main(FAST + ["--output", str(out),
                                  "--label", "first"]) == 0
        assert bench_main(FAST + ["--output", str(out),
                                  "--label", "second"]) == 0
        history = json.loads(out.read_text())["history"]
        assert [h["label"] for h in history] == ["first", "second"]
        assert history[-1]["workloads"]["single"]["events_executed"] > 0

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            bench_main(["--workload", "nonexistent"])

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats must be >= 1"):
            run_benchmarks(quick=True, workload_names=["single"], repeats=0)


class TestVerifyKernels:
    def test_cli_exit_zero_on_agreement(self, capsys):
        assert bench_main(["--quick", "--workload", "single",
                           "--verify-kernels"]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_report_structure(self):
        report = verify_kernels(quick=True, workload_names=["single"])
        assert report["ok"] is True
        entry = report["workloads"]["single"]
        assert entry["cycles"] == QUICK_CYCLES
        assert entry["fingerprints"]["heap"] == \
            entry["fingerprints"]["batched"]


class TestBreakdown:
    def test_cli_prints_subsystem_attribution(self, capsys):
        assert bench_main(["--quick", "--workload", "single",
                           "--breakdown"]) == 0
        printed = capsys.readouterr().out
        assert "s profiled" in printed
        # at least the big three subsystems appear with percentages
        for subsystem in ("engine", "core"):
            assert subsystem in printed
        assert "%" in printed


class TestBaselineComparison:
    def _results(self):
        return run_benchmarks(quick=True, workload_names=["single"],
                              repeats=1)

    def test_improvement_passes(self):
        results = self._results()
        baseline = {"workloads": {"single": {"events_per_second": 1.0}}}
        comparison = compare_to_baseline(results, baseline, 0.15)
        assert comparison["ok"] is True
        assert comparison["workloads"]["single"]["change"] > 0

    def test_regression_fails(self):
        results = self._results()
        baseline = {"workloads": {
            "single": {"events_per_second": 1e15}}}
        comparison = compare_to_baseline(results, baseline, 0.15)
        assert comparison["ok"] is False
        assert comparison["workloads"]["single"]["ok"] is False

    def test_unknown_baseline_workloads_are_skipped(self):
        results = self._results()
        baseline = {"workloads": {"renamed": {"events_per_second": 5.0}}}
        comparison = compare_to_baseline(results, baseline, 0.15)
        assert comparison["workloads"] == {}
        assert comparison["ok"] is True

    def test_cli_exit_one_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"workloads": {"single": {"events_per_second": 1e15}}}))
        code = bench_main(FAST + ["--no-output",
                                  "--baseline", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_exit_zero_on_improvement(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"workloads": {"single": {"events_per_second": 1.0}}}))
        code = bench_main(FAST + ["--no-output",
                                  "--baseline", str(baseline)])
        assert code == 0
        assert "[ok]" in capsys.readouterr().out
