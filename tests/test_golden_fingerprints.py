"""Golden result fingerprints: the event-kernel bit-identity oracle.

Each scenario below runs a seeded system and hashes the complete
:meth:`~repro.sim.stats.SystemStats.snapshot` canonically
(:meth:`~repro.sim.stats.SystemStats.fingerprint`).  The hashes were
recorded before the event-kernel fast path landed, so any optimisation
that changes *any* statistic -- event ordering, request ids feeding a
tie-break, histogram contents, queue depths -- trips these tests.

The scenarios cover the three main simulation shapes: the simple core
model on the FCFS fallback, the instruction-window model under MITTS
shaping with FR-FCFS, and the mesh-NoC path.  Every scenario runs under
*both* event kernels -- the checked heap engine and the batched
calendar-queue wheel -- and the suite runs both with and without
``REPRO_CONTRACTS=1`` in CI; the fingerprints must be identical in all
four combinations (contracts observe, never perturb; the fast path
reorders nothing).

If a fingerprint changes *intentionally* (a modelling change, not an
optimisation), re-record it here and say why in the commit message.
"""

from dataclasses import replace

import pytest

from repro.core.bins import BinConfig
from repro.core.shaper import MittsShaper
from repro.sched.base import FcfsScheduler, FrFcfsScheduler
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.mixes import workload_traces

GOLDEN_CYCLES = 120_000

KERNELS = ("heap", "batched")

#: recorded at commit 64122aa (pre-fast-path), Python 3.11
GOLDEN_MIX_SIMPLE = \
    "369d311002b2a07f286310fff31020990b7eb97403239c4d83bed04fa93a6672"
GOLDEN_MIX_WINDOW_SHAPED = \
    "7223a59c3d2b69faf28e69934064828a9d55d71052c53efc3ec72bddbe8a12b9"
GOLDEN_MIX_NOC = \
    "335a4849882ea7e49c5d0bb2984689f0bc2c8e9846c45cf3062eb0dd6718d234"


def run_mix_simple(kernel: str = "batched") -> SimSystem:
    """Workload mix 1, simple cores, FCFS fallback scheduler."""
    traces = workload_traces(1, seed=11)
    config = replace(SCALED_MULTI_CONFIG, kernel=kernel)
    system = SimSystem(traces, config=config)
    system.run(GOLDEN_CYCLES)
    return system


def run_mix_window_shaped(kernel: str = "batched") -> SimSystem:
    """Workload mix 2, window cores, MITTS shapers, FR-FCFS."""
    traces = workload_traces(2, seed=22)
    config = replace(SCALED_MULTI_CONFIG, core_model="window",
                     kernel=kernel)
    credits = [4, 4, 3, 3, 2, 2, 1, 1, 1, 1]
    limiters = [MittsShaper(BinConfig.from_credits(credits), phase=17 * i)
                for i in range(len(traces))]
    system = SimSystem(traces, config=config, limiters=limiters,
                       scheduler=FrFcfsScheduler(len(traces)))
    system.run(GOLDEN_CYCLES)
    return system


def run_mix_noc(kernel: str = "batched") -> SimSystem:
    """Workload mix 3 across the mesh NoC, FCFS."""
    traces = workload_traces(3, seed=33)
    config = replace(SCALED_MULTI_CONFIG, noc_enabled=True, kernel=kernel)
    system = SimSystem(traces, config=config,
                       scheduler=FcfsScheduler(len(traces)))
    system.run(GOLDEN_CYCLES)
    return system


@pytest.mark.parametrize("kernel", KERNELS)
class TestGoldenFingerprints:
    def test_mix_simple(self, kernel):
        assert run_mix_simple(kernel).stats.fingerprint() \
            == GOLDEN_MIX_SIMPLE

    @pytest.mark.slow
    def test_mix_window_shaped(self, kernel):
        assert run_mix_window_shaped(kernel).stats.fingerprint() \
            == GOLDEN_MIX_WINDOW_SHAPED

    def test_mix_noc(self, kernel):
        assert run_mix_noc(kernel).stats.fingerprint() == GOLDEN_MIX_NOC


class TestBackToBackDeterminism:
    """Request ids are allocated per system, not process-globally.

    A module-global id counter would give the second system of a process
    different (shifted) request ids than a fresh process -- harmless while
    ids only break ties, but a latent determinism trap for anything keyed
    on absolute ids.  Running the same scenario twice in one process must
    reproduce the golden hash both times.
    """

    def test_second_system_matches_golden(self):
        first = run_mix_simple().stats.fingerprint()
        second = run_mix_simple().stats.fingerprint()
        assert first == GOLDEN_MIX_SIMPLE
        assert second == GOLDEN_MIX_SIMPLE

    def test_request_ids_restart_per_system(self):
        system_a = run_mix_simple()
        system_b = run_mix_simple()
        assert system_a.request_ids is not system_b.request_ids
        # Both systems consumed the same id range from their own allocator.
        assert next(system_a.request_ids._count) \
            == next(system_b.request_ids._count)
