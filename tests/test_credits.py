"""Unit tests for the runtime credit state."""

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.core.credits import CreditState


def make_state(credits):
    return CreditState(BinConfig.from_credits(credits))


class TestDeduction:
    def test_initial_counts_match_config(self):
        state = make_state([3, 1, 4, 1, 5, 9, 2, 6, 5, 3])
        assert state.counts == [3, 1, 4, 1, 5, 9, 2, 6, 5, 3]

    def test_deduct_decrements(self):
        state = make_state([2] + [0] * 9)
        state.deduct(0)
        assert state.available(0) == 1

    def test_deduct_empty_bin_rejected(self):
        state = make_state([0] * 10)
        with pytest.raises(ValueError):
            state.deduct(0)

    def test_find_deductible_prefers_own_bin(self):
        state = make_state([5, 5, 5] + [0] * 7)
        assert state.find_deductible(2) == 2

    def test_find_deductible_falls_back_to_faster_bins(self):
        state = make_state([5, 0, 0] + [0] * 7)
        # Request in bin 2 may take a bin-0 credit (faster bin).
        assert state.find_deductible(2) == 0

    def test_find_deductible_never_uses_slower_bins(self):
        state = make_state([0, 0, 0, 7] + [0] * 6)
        # Request in bin 2 cannot take a bin-3 credit.
        assert state.find_deductible(2) is None

    def test_find_deductible_clamps_index(self):
        state = make_state([1] + [0] * 9)
        assert state.find_deductible(99) == 0

    def test_total_available(self):
        state = make_state([1, 2, 3] + [0] * 7)
        assert state.total_available() == 6


class TestRefund:
    def test_refund_restores_credit(self):
        state = make_state([2] + [0] * 9)
        state.deduct(0)
        state.refund(0)
        assert state.available(0) == 2

    def test_refund_saturates_at_configured_limit(self):
        state = make_state([2] + [0] * 9)
        state.refund(0)  # already full
        assert state.available(0) == 2


class TestReplenishAndReconfigure:
    def test_replenish_resets_all_bins(self):
        state = make_state([3, 3] + [0] * 8)
        state.deduct(0)
        state.deduct(1)
        state.replenish()
        assert state.counts[:2] == [3, 3]

    def test_reconfigure_with_reset(self):
        state = make_state([1] * 10)
        state.reconfigure(BinConfig.from_credits([5] * 10))
        assert state.counts == [5] * 10

    def test_reconfigure_without_reset_clamps(self):
        state = make_state([5] * 10)
        state.reconfigure(BinConfig.from_credits([2] * 10), reset=False)
        assert state.counts == [2] * 10

    def test_reconfigure_without_reset_keeps_lower_counts(self):
        state = make_state([5] * 10)
        for _ in range(4):
            state.deduct(0)
        state.reconfigure(BinConfig.from_credits([3] * 10), reset=False)
        assert state.counts[0] == 1

    def test_reconfigure_different_bin_count_rejected(self):
        state = make_state([1] * 10)
        other = BinConfig(spec=BinSpec(num_bins=4), credits=(1, 1, 1, 1))
        with pytest.raises(ValueError):
            state.reconfigure(other)


class TestNextAvailable:
    def test_next_available_at_or_above(self):
        state = make_state([0, 0, 0, 2, 0, 1] + [0] * 4)
        assert state.next_available_bin_at_or_above(0) == 3
        assert state.next_available_bin_at_or_above(4) == 5
        assert state.next_available_bin_at_or_above(6) is None
