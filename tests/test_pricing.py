"""Unit tests for bin-credit pricing."""

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.core.pricing import (burst_penalty, config_price,
                                config_price_core_equivalents,
                                credit_price, price_vector)


class TestBurstPenalty:
    def test_fastest_bin_near_double(self):
        spec = BinSpec()
        # 2 - t_0/t_9 = 2 - 5/95
        assert burst_penalty(spec, 0) == pytest.approx(2 - 5 / 95)

    def test_slowest_bin_exactly_one(self):
        spec = BinSpec()
        assert burst_penalty(spec, spec.num_bins - 1) == pytest.approx(1.0)

    def test_penalty_monotonically_decreasing(self):
        spec = BinSpec()
        penalties = [burst_penalty(spec, i) for i in range(spec.num_bins)]
        assert penalties == sorted(penalties, reverse=True)


class TestCreditPrice:
    def test_price_decreasing_with_bin_index(self):
        spec = BinSpec()
        prices = price_vector(spec)
        assert list(prices) == sorted(prices, reverse=True)

    def test_price_proportional_to_bandwidth_times_penalty(self):
        spec = BinSpec()
        expected = (64 / spec.center(3)) * burst_penalty(spec, 3)
        assert credit_price(spec, 3) == pytest.approx(expected)

    def test_config_price_sums_credits(self):
        spec = BinSpec()
        config = BinConfig.single_bin(2, 5, spec)
        assert config_price(config) == pytest.approx(
            5 * credit_price(spec, 2))


class TestCoreEquivalentPricing:
    def test_empty_config_is_free(self):
        config = BinConfig.from_credits([0] * 10)
        assert config_price_core_equivalents(config) == 0.0

    def test_single_bin_price_independent_of_credit_count(self):
        """All credits in one bin deliver the same average bandwidth
        regardless of count (T_r scales with credits), so the delivered-
        bandwidth price must match."""
        small = BinConfig.single_bin(4, 2)
        large = BinConfig.single_bin(4, 20)
        assert config_price_core_equivalents(small) == pytest.approx(
            config_price_core_equivalents(large), rel=0.01)

    def test_faster_rate_costs_more(self):
        fast = BinConfig.single_bin(0, 8)
        slow = BinConfig.single_bin(9, 8)
        assert config_price_core_equivalents(fast) \
            > config_price_core_equivalents(slow)

    def test_burst_premium_bounded_by_two(self):
        """At equal delivered average bandwidth, the bursty allocation
        costs at most 2x the bulk one (the 2 - t_i/t_N factor)."""
        spec = BinSpec()
        fast = BinConfig.single_bin(0, 8, spec)
        slow = BinConfig.single_bin(9, 8, spec)
        fast_bw = fast.average_bandwidth()
        slow_bw = slow.average_bandwidth()
        fast_unit = config_price_core_equivalents(fast) / fast_bw
        slow_unit = config_price_core_equivalents(slow) / slow_bw
        assert 1.0 < fast_unit / slow_unit <= 2.0 + 1e-9

    def test_price_scales_with_delivered_bandwidth(self):
        """Mixing in more slow-bin credits raises the price by their
        delivered bandwidth share."""
        base = BinConfig.from_credits([4] + [0] * 9)
        richer = BinConfig.from_credits([8] + [0] * 9)
        # Same single-bin shape: same avg bandwidth, same price.
        assert config_price_core_equivalents(base) == pytest.approx(
            config_price_core_equivalents(richer), rel=0.01)
        mixed = BinConfig.from_credits([4] + [0] * 8 + [4])
        # Mixed shape delivers a different (lower) average bandwidth.
        assert config_price_core_equivalents(mixed) \
            < config_price_core_equivalents(base)
