"""Tests for the mesh NoC substrate."""

import pytest

from repro.sim.engine import Engine
from repro.sim.noc import MeshNoc, bank_tile
from repro.sim.system import SimSystem, single_config
from repro.workloads.benchmarks import trace_for


def make_noc(tiles=9, hop_latency=2, link_occupancy=1):
    return MeshNoc(Engine(), tiles=tiles, hop_latency=hop_latency,
                   link_occupancy=link_occupancy)


class TestGeometry:
    def test_square_mesh_derived(self):
        assert make_noc(9).width == 3
        assert make_noc(25).width == 5
        assert make_noc(5).width == 3  # ceil(sqrt(5))

    def test_coordinates_roundtrip(self):
        noc = make_noc(9)
        assert noc.coordinates(0) == (0, 0)
        assert noc.coordinates(4) == (1, 1)
        assert noc.coordinates(8) == (2, 2)

    def test_coordinates_validated(self):
        with pytest.raises(ValueError):
            make_noc(4).coordinates(99)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MeshNoc(Engine(), tiles=0)
        with pytest.raises(ValueError):
            MeshNoc(Engine(), tiles=4, hop_latency=0)


class TestRouting:
    def test_manhattan_hops(self):
        noc = make_noc(9)
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 8) == 4  # (0,0) -> (2,2)
        assert noc.hops(0, 2) == 2

    def test_route_is_xy(self):
        noc = make_noc(9)
        links = noc.route(0, 8)
        # X first: 0->1->2, then Y: 2->5->8.
        assert links == [(0, 1), (1, 2), (2, 5), (5, 8)]

    def test_route_length_matches_hops(self):
        noc = make_noc(16)
        for src in range(16):
            for dst in range(16):
                assert len(noc.route(src, dst)) == noc.hops(src, dst)


class TestTraversal:
    def test_latency_proportional_to_distance(self):
        # Fresh mesh per measurement: links remember occupancy.
        assert make_noc(9, hop_latency=3).traverse(0, 0, now=0) == 0
        assert make_noc(9, hop_latency=3).traverse(0, 1, now=0) == 3
        assert make_noc(9, hop_latency=3).traverse(0, 8, now=0) == 12

    def test_link_contention_serialises(self):
        noc = make_noc(9, hop_latency=2, link_occupancy=2)
        first = noc.traverse(0, 1, now=0)
        second = noc.traverse(0, 1, now=0)
        assert second > first

    def test_disjoint_routes_do_not_interfere(self):
        noc = make_noc(9, hop_latency=2, link_occupancy=4)
        a = noc.traverse(0, 1, now=0)
        b = noc.traverse(8, 7, now=0)  # opposite corner, no shared link
        assert a == b == 2

    def test_stats_counters(self):
        noc = make_noc(9)
        noc.traverse(0, 8, now=0)
        assert noc.flits_routed == 1
        assert noc.total_hops == 4

    def test_congestion_probe(self):
        noc = make_noc(4, hop_latency=1, link_occupancy=10)
        assert noc.congestion(0) == 0.0
        for _ in range(5):
            noc.traverse(0, 1, now=0)
        assert noc.congestion(0) > 0.0


class TestBankTile:
    def test_banks_spread_over_tiles(self):
        noc = make_noc(16)
        tiles = {bank_tile(noc, b, 8) for b in range(8)}
        assert len(tiles) > 1

    def test_invalid_bank_count(self):
        with pytest.raises(ValueError):
            bank_tile(make_noc(4), 0, 0)


class TestSystemIntegration:
    def test_noc_adds_latency(self):
        base = single_config(llc_size=64 * 1024, l1_size=8 * 1024)
        with_noc = single_config(llc_size=64 * 1024, l1_size=8 * 1024,
                                 noc_enabled=True, noc_hop_latency=4)
        trace = trace_for("mcf")
        plain = SimSystem([trace], config=base).run(30_000)
        meshed = SimSystem([trace], config=with_noc).run(30_000)
        assert meshed.cores[0].average_latency \
            > plain.cores[0].average_latency

    def test_noc_system_multi_core(self):
        config = single_config(llc_size=256 * 1024, l1_size=8 * 1024,
                               noc_enabled=True)
        traces = [trace_for("gcc"), trace_for("mcf", seed=2),
                  trace_for("libquantum", seed=3)]
        system = SimSystem(traces, config=config)
        stats = system.run(30_000)
        assert all(core.work_cycles > 0 for core in stats.cores)
        assert system.noc.flits_routed > 0
