"""Tests for analytic worst-case service guarantees (Section IV-F)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bins import BinConfig
from repro.core.guarantees import (guaranteed_requests_per_period,
                                   service_curve, sustainable_bandwidth,
                                   worst_case_burst_completion,
                                   worst_case_single_delay)
from repro.core.shaper import MittsShaper


class TestBasicBounds:
    def test_guaranteed_requests(self):
        config = BinConfig.from_credits([3, 2, 0, 0, 0, 0, 0, 0, 0, 1])
        assert guaranteed_requests_per_period(config) == 6

    def test_single_delay_single_fast_bin(self):
        config = BinConfig.single_bin(0, 4)  # period 20, fastest edge 0
        assert worst_case_single_delay(config) == 20

    def test_single_delay_includes_aging_to_populated_bin(self):
        config = BinConfig.single_bin(5, 2)  # period 110, edge 50
        assert worst_case_single_delay(config) == 110 + 50

    def test_zero_config_rejected(self):
        config = BinConfig.from_credits([0] * 10)
        with pytest.raises(ValueError):
            worst_case_single_delay(config)
        with pytest.raises(ValueError):
            worst_case_burst_completion(config, 1)

    def test_burst_within_one_period(self):
        config = BinConfig.from_credits([4] + [0] * 9)
        # 4 credits at t=5 spacing after up to one full period's wait.
        assert worst_case_burst_completion(config, 4) \
            == config.replenish_period() + 20

    def test_burst_spanning_periods(self):
        config = BinConfig.from_credits([2] + [0] * 9)
        one = worst_case_burst_completion(config, 2)
        two = worst_case_burst_completion(config, 4)
        assert two > one
        assert two - one >= config.replenish_period() - 1

    def test_burst_validation(self):
        config = BinConfig.from_credits([1] * 10)
        with pytest.raises(ValueError):
            worst_case_burst_completion(config, 0)

    def test_sustainable_bandwidth_matches_config_math(self):
        config = BinConfig.from_credits([2, 3, 0, 1, 0, 0, 0, 0, 0, 0])
        assert sustainable_bandwidth(config) == pytest.approx(
            config.average_bandwidth(), rel=0.02)

    def test_service_curve_monotone(self):
        config = BinConfig.from_credits([2, 1] + [0] * 8)
        period = config.replenish_period()
        horizons = [0, period - 1, period, 3 * period, 10 * period]
        curve = service_curve(config, horizons)
        assert curve == sorted(curve)
        assert curve[0] == 0
        assert curve[2] == config.total_credits

    def test_service_curve_validates(self):
        config = BinConfig.from_credits([1] * 10)
        with pytest.raises(ValueError):
            service_curve(config, [-1])


class TestBoundsHoldInSimulation:
    """The analytic bounds must dominate observed shaper behaviour."""

    credit_vectors = st.lists(st.integers(min_value=0, max_value=16),
                              min_size=10, max_size=10).filter(
                                  lambda v: sum(v) > 0)

    @given(credit_vectors, st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_burst_bound_dominates_shaper(self, credits, burst):
        config = BinConfig.from_credits(credits)
        bound = worst_case_burst_completion(config, burst)
        shaper = MittsShaper(config)
        # Adversarial start: drain whatever is drainable right now.
        now = 0
        while True:
            release = shaper.earliest_issue(now)
            if release is None or release > now:
                break
            shaper.issue(release, req_id=1000 + now)
            now = release
        start = now
        released = 0
        while released < burst:
            release = shaper.earliest_issue(now)
            assert release is not None
            shaper.issue(release, req_id=released)
            released += 1
            now = release
        assert now - start <= bound

    @given(credit_vectors)
    @settings(max_examples=30, deadline=None)
    def test_single_delay_bound_dominates_shaper(self, credits):
        config = BinConfig.from_credits(credits)
        bound = worst_case_single_delay(config)
        shaper = MittsShaper(config)
        now = 0
        while True:
            release = shaper.earliest_issue(now)
            if release is None or release > now:
                break
            shaper.issue(release, req_id=1000 + now)
            now = release
        release = shaper.earliest_issue(now)
        assert release is not None
        assert release - now <= bound
