"""Tests for per-VM shaping and register-state swapping."""

import pytest

from repro.cloud.vm import (MittsRegisterState, VirtualMachine,
                            build_vm_system, vm_core_ranges, vm_work)
from repro.core.bins import BinConfig
from repro.core.shaper import MittsShaper
from repro.sim.system import SCALED_MULTI_CONFIG
from repro.workloads.benchmarks import profile
from repro.workloads.generator import thread_traces


def make_vm(name="tenant", benchmark="x264", vcpus=2, credits=None):
    config = credits or BinConfig.from_credits([8, 4, 2, 2, 1, 1, 1, 1,
                                                1, 4])
    traces = thread_traces(profile(benchmark), vcpus, seed=3)
    return VirtualMachine(name=name, traces=traces, config=config)


class TestVirtualMachine:
    def test_vcpus(self):
        assert make_vm(vcpus=3).vcpus == 3

    def test_empty_vm_rejected(self):
        with pytest.raises(ValueError):
            VirtualMachine(name="empty", traces=[],
                           config=BinConfig.unlimited())

    def test_shaper_auto_created(self):
        vm = make_vm()
        assert isinstance(vm.shaper, MittsShaper)
        assert vm.shaper.config.credits == vm.config.credits


class TestSystemAssembly:
    def test_vcpus_share_the_vm_shaper(self):
        vm_a = make_vm("a", "x264", vcpus=2)
        vm_b = make_vm("b", "ferret", vcpus=2)
        system = build_vm_system([vm_a, vm_b], SCALED_MULTI_CONFIG)
        assert system.limiter(0) is system.limiter(1) is vm_a.shaper
        assert system.limiter(2) is system.limiter(3) is vm_b.shaper

    def test_core_ranges(self):
        vm_a = make_vm("a", vcpus=3)
        vm_b = make_vm("b", vcpus=1)
        ranges = vm_core_ranges([vm_a, vm_b])
        assert ranges["a"] == range(0, 3)
        assert ranges["b"] == range(3, 4)

    def test_run_and_per_vm_accounting(self):
        vm_a = make_vm("a", "x264", vcpus=2)
        vm_b = make_vm("b", "ferret", vcpus=2)
        system = build_vm_system([vm_a, vm_b], SCALED_MULTI_CONFIG)
        stats = system.run(30_000)
        work = vm_work([vm_a, vm_b], stats)
        assert set(work) == {"a", "b"}
        assert all(value > 0 for value in work.values())

    def test_vm_provisioning_binds(self):
        """Shrinking a VM's purchased distribution must cost it work."""
        tight = BinConfig.from_credits([1, 0, 0, 0, 0, 0, 0, 0, 0, 6])

        def run_with(hog_credits):
            hog = make_vm("hog", "x264", vcpus=2, credits=hog_credits)
            other = make_vm("other", "ferret", vcpus=2)
            system = build_vm_system([hog, other], SCALED_MULTI_CONFIG)
            return vm_work([hog, other], system.run(30_000))

        generous = run_with(BinConfig.unlimited())
        throttled = run_with(tight)
        assert throttled["hog"] < generous["hog"]
        # The neighbour must not be harmed (small interleaving noise ok).
        assert throttled["other"] >= 0.97 * generous["other"]


class TestRegisterSwap:
    def test_capture_restore_roundtrip(self):
        vm = make_vm()
        vm.shaper.issue(0, req_id=1)
        saved = vm.swap_out()
        counts_at_save = list(vm.shaper.state.counts)
        vm.shaper.issue(7, req_id=2)
        assert vm.shaper.state.counts != counts_at_save
        vm.swap_in(saved)
        assert vm.shaper.state.counts == counts_at_save

    def test_restore_wrong_geometry_rejected(self):
        vm = make_vm()
        from repro.core.bins import BinSpec
        other = MittsShaper(BinConfig.single_bin(0, 1,
                                                 BinSpec(num_bins=4)))
        state = MittsRegisterState.capture(other)
        with pytest.raises(ValueError):
            state.restore(vm.shaper)

    def test_state_contains_replenish_values(self):
        vm = make_vm()
        state = vm.swap_out()
        assert state.replenish_values == list(vm.config.credits)
        assert state.next_boundary > 0
