"""The committed throughput trajectory in BENCH_sim.json."""

from repro.bench import with_history


def run_doc(eps):
    return {"schema": "repro.bench/v1", "mode": "full",
            "workloads": {"single": {"cycles": 1, "repeats": 1,
                                     "events_executed": 100,
                                     "wall_seconds": 100 / eps,
                                     "events_per_second": eps}}}


class TestWithHistory:
    def test_first_entry_starts_trajectory(self):
        merged = with_history(run_doc(1000.0), None, "pr-a")
        assert [e["label"] for e in merged["history"]] == ["pr-a"]
        entry = merged["history"][0]["workloads"]["single"]
        assert entry["events_per_second"] == 1000.0
        assert set(entry) == {"events_executed", "events_per_second",
                              "wall_seconds"}

    def test_history_accumulates_in_order(self):
        first = with_history(run_doc(1000.0), None, "pr-a")
        second = with_history(run_doc(2000.0), first, "pr-b")
        assert [e["label"] for e in second["history"]] == ["pr-a", "pr-b"]
        # the top-level workloads block is always the latest run
        assert second["workloads"]["single"]["events_per_second"] == 2000.0

    def test_pre_change_baseline_carried_forward(self):
        previous = dict(with_history(run_doc(1000.0), None, "pr-a"),
                        pre_change_baseline={"note": "hand-measured"})
        merged = with_history(run_doc(2000.0), previous, "pr-b")
        assert merged["pre_change_baseline"] == {"note": "hand-measured"}

    def test_input_documents_not_mutated(self):
        document = run_doc(1000.0)
        previous = with_history(run_doc(500.0), None, "pr-a")
        with_history(document, previous, "pr-b")
        assert "history" not in document
        assert len(previous["history"]) == 1


class TestRepeatsOverride:
    def test_repeat_must_be_positive(self):
        import pytest

        from repro.bench import run_benchmarks
        with pytest.raises(ValueError, match="repeats"):
            run_benchmarks(quick=True, repeats=0)


class TestBreakdownClassification:
    """The --breakdown attribution rules, pinned without profiling."""

    def test_fused_batched_methods_split_by_function(self):
        from repro.bench import _classify
        path = "/x/src/repro/sim/batched.py"
        assert _classify(path, "_run") == "core"
        assert _classify(path, "lookup") == "llc"
        assert _classify(path, "_dispatch") == "memctrl+dram"
        assert _classify(path, "_complete") == "memctrl+dram"

    def test_module_rules(self):
        from repro.bench import _classify
        assert _classify("/x/src/repro/sim/wheel.py", "run") == "engine"
        assert _classify("/x/src/repro/sim/llc.py", "lookup") == "llc"
        assert _classify("/x/src/repro/core/shaper.py", "issue") == "shaper"
        assert _classify("/x/src/repro/sim/stats.py", "add") == "stats"
        assert _classify("/usr/lib/python3.11/heapq.py", "x") == "other"
        assert _classify("~", "<built-in>") == "other"
