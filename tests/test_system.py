"""Integration tests for the full simulated system."""

import pytest

from repro.core.bins import BinConfig
from repro.core.limiter import NoLimiter, StaticLimiter
from repro.core.shaper import MittsShaper
from repro.sim.system import (SCALED_MULTI_CONFIG, SCALED_SINGLE_CONFIG,
                              SimSystem, SystemConfig, single_config)
from repro.workloads.benchmarks import trace_for
from repro.workloads.trace import uniform_trace


class TestBasicRuns:
    def test_single_core_progresses(self):
        system = SimSystem([trace_for("gcc")],
                           config=SCALED_SINGLE_CONFIG)
        stats = system.run(20_000)
        assert stats.cores[0].work_cycles > 0
        assert stats.cycles == 20_000

    def test_multi_core_all_progress(self):
        traces = [trace_for(name, seed=i)
                  for i, name in enumerate(["gcc", "mcf"], start=1)]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG)
        stats = system.run(20_000)
        assert all(core.work_cycles > 0 for core in stats.cores)

    def test_run_is_resumable(self):
        system = SimSystem([trace_for("gcc")],
                           config=SCALED_SINGLE_CONFIG)
        first = system.run(10_000).cores[0].work_cycles
        second = system.run(10_000).cores[0].work_cycles
        assert second > first

    def test_deterministic_across_instances(self):
        def run_once():
            system = SimSystem([trace_for("mcf"), trace_for("gcc", seed=2)],
                               config=SCALED_MULTI_CONFIG)
            stats = system.run(15_000)
            return [core.work_cycles for core in stats.cores]

        assert run_once() == run_once()

    def test_no_traces_rejected(self):
        with pytest.raises(ValueError):
            SimSystem([])

    def test_limiter_count_must_match(self):
        with pytest.raises(ValueError):
            SimSystem([trace_for("gcc")], limiters=[NoLimiter(),
                                                    NoLimiter()])


class TestShaping:
    def test_static_limiter_reduces_work(self):
        trace = trace_for("mcf")
        free = SimSystem([trace], config=SCALED_SINGLE_CONFIG)
        free_work = free.run(30_000).cores[0].work_cycles
        tight = SimSystem([trace], config=SCALED_SINGLE_CONFIG,
                          limiters=[StaticLimiter(200)])
        tight_work = tight.run(30_000).cores[0].work_cycles
        assert tight_work < free_work

    def test_mitts_shaper_bounds_release_rate(self):
        config = BinConfig.single_bin(9, 4)  # ~1 per 95 cycles
        shaper = MittsShaper(config)
        system = SimSystem([trace_for("mcf")],
                           config=SCALED_SINGLE_CONFIG,
                           limiters=[shaper])
        system.run(30_000)
        assert shaper.released <= 30_000 / 90 + 8

    def test_unlimited_config_close_to_unshaped(self):
        trace = trace_for("gcc")
        free = SimSystem([trace], config=SCALED_SINGLE_CONFIG)
        free_work = free.run(30_000).cores[0].work_cycles
        shaped = SimSystem([trace], config=SCALED_SINGLE_CONFIG,
                           limiters=[MittsShaper(BinConfig.unlimited())])
        shaped_work = shaped.run(30_000).cores[0].work_cycles
        assert shaped_work >= 0.9 * free_work

    def test_set_limiter_swaps_policy(self):
        system = SimSystem([trace_for("mcf")],
                           config=SCALED_SINGLE_CONFIG)
        system.run(5_000)
        work_before = system.stats.cores[0].work_cycles
        system.set_limiter(0, StaticLimiter(500))
        system.run(20_000)
        gained = system.stats.cores[0].work_cycles - work_before
        # Heavy throttling: little extra work accumulated.
        assert gained < work_before * 4

    def test_refunds_happen_with_llc_hits(self):
        shaper = MittsShaper(BinConfig.from_credits([16] * 10))
        system = SimSystem([trace_for("hmmer")],
                           config=SCALED_MULTI_CONFIG,
                           limiters=[shaper])
        system.run(30_000)
        assert shaper.refunds > 0


class TestInterference:
    def test_co_runner_slows_victim(self):
        victim = trace_for("astar")
        alone = SimSystem([victim], config=SCALED_MULTI_CONFIG)
        alone_work = alone.run(30_000).cores[0].work_cycles
        shared = SimSystem([victim, trace_for("libquantum", seed=2),
                            trace_for("mcf", seed=3)],
                           config=SCALED_MULTI_CONFIG)
        shared_work = shared.run(30_000).cores[0].work_cycles
        assert shared_work < alone_work

    def test_throttling_hogs_helps_victim(self):
        victim = trace_for("astar")
        hogs = [trace_for("libquantum", seed=2), trace_for("mcf", seed=3)]
        unshaped = SimSystem([victim] + hogs, config=SCALED_MULTI_CONFIG)
        base = unshaped.run(40_000).cores[0].work_cycles
        cap = BinConfig.from_credits([1, 0, 0, 0, 0, 0, 0, 0, 0, 6])
        shaped = SimSystem([victim] + hogs, config=SCALED_MULTI_CONFIG,
                           limiters=[NoLimiter(), MittsShaper(cap),
                                     MittsShaper(cap)])
        protected = shaped.run(40_000).cores[0].work_cycles
        assert protected > base


class TestPlumbing:
    def test_every_fires_periodically(self):
        system = SimSystem([uniform_trace(100, 20)],
                           config=SCALED_SINGLE_CONFIG)
        ticks = []
        system.every(1_000, lambda: ticks.append(system.engine.now))
        system.run(10_500)
        assert ticks == [1_000 * i for i in range(1, 11)]

    def test_every_rejects_bad_period(self):
        system = SimSystem([uniform_trace(10, 10)])
        with pytest.raises(ValueError):
            system.every(0, lambda: None)

    def test_work_rates(self):
        system = SimSystem([trace_for("gcc")],
                           config=SCALED_SINGLE_CONFIG)
        system.run(10_000)
        rates = system.work_rates()
        assert 0.0 < rates[0] <= 1.0

    def test_mem_interarrival_histogram_populated(self):
        system = SimSystem([trace_for("mcf")],
                           config=SCALED_SINGLE_CONFIG)
        stats = system.run(20_000)
        assert sum(stats.cores[0].mem_interarrival.values()) > 10

    def test_mlp_override(self):
        fast = SimSystem([trace_for("mcf")], config=SCALED_SINGLE_CONFIG,
                         mlps=[16])
        slow = SimSystem([trace_for("mcf")], config=SCALED_SINGLE_CONFIG,
                         mlps=[1])
        assert fast.run(20_000).cores[0].work_cycles \
            > slow.run(20_000).cores[0].work_cycles

    def test_single_config_helper(self):
        config = single_config(llc_size=128 * 1024, l1_size=16 * 1024)
        assert config.llc_size == 128 * 1024
        assert config.l1_size == 16 * 1024
        assert isinstance(config, SystemConfig)
