"""Public-API surface tests: the documented names import and compose.

A library's public API is a contract; these tests pin the exports the
README and examples rely on, so a refactor that silently drops one fails
loudly here rather than in a user's code.
"""

import importlib

import pytest


PUBLIC_SURFACE = {
    "repro": [
        "BinConfig", "BinSpec", "MittsShaper", "SimSystem",
        "StaticLimiter", "NoLimiter", "TokenBucketLimiter", "Engine",
        "OnlineGaTuner", "GeneticAlgorithm", "FitnessEvaluator",
        "InterarrivalDistribution", "trace_for", "workload_traces",
        "available_benchmarks", "geometric_mean", "__version__",
    ],
    "repro.core": [
        "BinConfig", "BinSpec", "CreditState", "MittsShaper",
        "MittsAreaModel", "ResetReplenisher", "RateReplenisher",
        "CongestionController", "credit_price", "burst_penalty",
        "worst_case_single_delay", "worst_case_burst_completion",
        "repair_to_constraints", "static_configs",
    ],
    "repro.sim": [
        "SimSystem", "SystemConfig", "Cache", "CacheGeometry",
        "MemoryController", "SharedLLC", "CoreModel", "ShaperPort",
        "SCALED_MULTI_CONFIG", "SCALED_SINGLE_CONFIG",
        "SINGLE_PROGRAM_CONFIG", "MULTI_PROGRAM_CONFIG",
    ],
    "repro.dram": [
        "DramDevice", "DramTiming", "AddressMapper", "Bank", "DDR3_1333",
    ],
    "repro.sched": [
        "FcfsScheduler", "FrFcfsScheduler", "FairQueueScheduler",
        "TcmScheduler", "MiseScheduler", "MemGuardScheduler",
        "FstController", "StfmScheduler", "ParbsScheduler",
        "AtlasScheduler", "build_hybrid",
    ],
    "repro.workloads": [
        "trace_for", "workload_traces", "SyntheticTrace", "ListTrace",
        "TraceEvent", "PhaseDetector", "SystemPhaseMonitor",
        "dump_trace", "load_trace", "thread_traces",
    ],
    "repro.tuning": [
        "GeneticAlgorithm", "GaParams", "OnlineGaTuner", "HillClimber",
        "RandomSearch", "FitnessEvaluator", "profile_benchmark",
        "config_from_profile", "seed_genomes",
    ],
    "repro.cloud": [
        "Customer", "CreditMarket", "Bid", "VirtualMachine",
        "build_vm_system", "AutoScaler", "ScheduleRule", "TriggerRule",
        "best_static_config", "perf_per_cost",
    ],
    "repro.metrics": [
        "InterarrivalDistribution", "average_slowdown", "max_slowdown",
        "weighted_speedup", "harmonic_mean_speedup", "format_table",
    ],
    "repro.experiments": [
        "REGISTRY", "run_experiment", "SCALES", "Result",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [name for name in PUBLIC_SURFACE[module_name]
               if not hasattr(module, name)]
    assert not missing, f"{module_name} lost exports: {missing}"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_all_lists_are_importable(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists " \
                                      f"missing name {name}"


def test_every_public_module_has_docstring():
    for module_name in PUBLIC_SURFACE:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
