"""Unit tests for the MITTS traffic shaper."""

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.core.replenish import ResetReplenisher
from repro.core.shaper import MittsShaper


def shaper_with(credits, **kwargs):
    return MittsShaper(BinConfig.from_credits(credits), **kwargs)


class TestImmediateIssue:
    def test_first_request_uses_slowest_bin(self):
        shaper = shaper_with([0] * 9 + [1])
        assert shaper.earliest_issue(0) == 0

    def test_first_request_can_use_fast_credit(self):
        # Boot inter-arrival is "long ago": any bin <= slowest works.
        shaper = shaper_with([1] + [0] * 9)
        assert shaper.earliest_issue(100) == 100

    def test_first_issue_deducts_slowest_populated_bin(self):
        # The boot request reads as slowest-bin; deduction scans downward
        # from its bin, so the *cheapest sufficient* credit is consumed.
        shaper = shaper_with([2, 2] + [0] * 8)
        shaper.issue(0, req_id=1)
        assert shaper.credit_counts() == [2, 1] + [0] * 8

    def test_issue_deducts_from_matching_bin(self):
        shaper = shaper_with([2, 2] + [0] * 8)
        shaper.issue(0, req_id=1)   # boot: consumes a bin-1 credit
        shaper.issue(7, req_id=2)   # inter-arrival 7 -> bin 0
        assert shaper.credit_counts()[0] == 1
        assert shaper.credit_counts()[1] == 1

    def test_issue_prefers_own_bin_over_faster(self):
        shaper = shaper_with([2, 2] + [0] * 8)
        shaper.issue(0, req_id=1)   # consumes bin 1
        shaper.issue(15, req_id=2)  # inter-arrival 15 -> bin 1 again
        assert shaper.credit_counts()[1] == 0
        assert shaper.credit_counts()[0] == 2

    def test_issue_without_credit_raises(self):
        shaper = shaper_with([1] + [0] * 9)
        shaper.issue(0, req_id=1)
        with pytest.raises(ValueError):
            shaper.issue(1, req_id=2)


class TestStallAndAging:
    def test_request_waits_for_slower_bin(self):
        # After the boot request consumes the bin-9 credit, only a bin-5
        # credit remains (lower edge 50): a request arriving 7 cycles
        # after the last release must age until inter-arrival 50.
        shaper = shaper_with([0] * 5 + [1] + [0] * 3 + [1])
        shaper.issue(0, req_id=1)  # consumes the bin-9 credit
        release = shaper.earliest_issue(7)
        assert release == 50

    def test_request_waits_for_replenish_when_no_later_bins(self):
        shaper = shaper_with([1] + [0] * 9)
        boundary = shaper.replenisher.next_boundary()
        shaper.issue(0, req_id=1)
        # Bin 0 is empty now; no slower bins have credits, so the next
        # chance is the replenishment boundary.
        release = shaper.earliest_issue(2)
        assert release == boundary

    def test_zero_credit_config_stalls_forever(self):
        shaper = shaper_with([0] * 10)
        assert shaper.stall_forever()
        assert shaper.earliest_issue(0) is None

    def test_record_stall_accumulates(self):
        shaper = shaper_with([1] + [0] * 9)
        shaper.record_stall(10)
        shaper.record_stall(0)
        assert shaper.stalled_requests == 1
        assert shaper.total_stall_cycles == 10


class TestReplenishment:
    def test_credits_return_after_period(self):
        config = BinConfig.from_credits([2] + [0] * 9)
        shaper = MittsShaper(config)
        period = config.replenish_period()
        shaper.issue(0, req_id=1)
        shaper.issue(5, req_id=2)
        assert shaper.earliest_issue(6) == period
        shaper.issue(period, req_id=3)
        assert shaper.credit_counts()[0] == 1


class TestMethod2Refund:
    def test_llc_hit_refunds_credit(self):
        shaper = shaper_with([2] + [0] * 9)
        shaper.issue(0, req_id=7)
        shaper.on_llc_response(7, was_hit=True)
        assert shaper.credit_counts()[0] == 2
        assert shaper.refunds == 1

    def test_llc_miss_keeps_deduction(self):
        shaper = shaper_with([2] + [0] * 9)
        shaper.issue(0, req_id=7)
        shaper.on_llc_response(7, was_hit=False)
        assert shaper.credit_counts()[0] == 1

    def test_unknown_request_id_ignored(self):
        shaper = shaper_with([2] + [0] * 9)
        shaper.on_llc_response(999, was_hit=True)
        assert shaper.credit_counts()[0] == 2

    def test_pending_table_tracks_inflight(self):
        shaper = shaper_with([4] + [0] * 9)
        shaper.issue(0, req_id=1)
        shaper.issue(5, req_id=2)
        assert shaper.pending_entries == 2
        shaper.on_llc_response(1, was_hit=False)
        assert shaper.pending_entries == 1


class TestMethod1Timestamp:
    def test_no_deduction_until_miss_confirmed(self):
        shaper = shaper_with([2] + [0] * 9,
                             method=MittsShaper.METHOD_TIMESTAMP)
        shaper.issue(0, req_id=1)
        assert shaper.credit_counts()[0] == 2  # not yet confirmed

    def test_confirmed_miss_deducts(self):
        shaper = shaper_with([2] + [0] * 9,
                             method=MittsShaper.METHOD_TIMESTAMP)
        shaper.issue(0, req_id=1)
        shaper.on_llc_response(1, was_hit=False)
        assert shaper.credit_counts()[0] == 1

    def test_hit_never_deducts(self):
        shaper = shaper_with([2] + [0] * 9,
                             method=MittsShaper.METHOD_TIMESTAMP)
        shaper.issue(0, req_id=1)
        shaper.on_llc_response(1, was_hit=True)
        assert shaper.credit_counts()[0] == 2

    def test_method1_uses_confirmed_miss_interarrival(self):
        shaper = shaper_with([1, 1] + [0] * 8,
                             method=MittsShaper.METHOD_TIMESTAMP)
        shaper.issue(0, req_id=1)
        shaper.issue(12, req_id=2)
        shaper.on_llc_response(1, was_hit=False)  # first miss: slowest bin
        shaper.on_llc_response(2, was_hit=False)  # 12 cycles later: bin 1
        assert shaper.credit_counts()[1] == 0

    def test_method1_is_aggressive_saturates_at_zero(self):
        # Issue decisions consult lagging counters, so more requests may
        # pass than credits exist; confirmation must not underflow.
        shaper = shaper_with([1] + [0] * 9,
                             method=MittsShaper.METHOD_TIMESTAMP)
        shaper.issue(0, req_id=1)
        shaper.issue(3, req_id=2)  # counters still full: allowed
        shaper.on_llc_response(1, was_hit=False)
        shaper.on_llc_response(2, was_hit=False)
        assert shaper.credit_counts()[0] == 0

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            shaper_with([1] * 10, method=3)


class TestReconfigure:
    def test_reconfigure_installs_new_credits(self):
        shaper = shaper_with([1] + [0] * 9)
        shaper.reconfigure(BinConfig.from_credits([0] * 9 + [5]))
        assert shaper.credit_counts()[9] == 5

    def test_reconfigure_resets_replenish_clock(self):
        shaper = shaper_with([1] + [0] * 9)
        config = BinConfig.from_credits([3] + [0] * 9)
        shaper.reconfigure(config, now=1000)
        assert shaper.replenisher.next_boundary() == \
            1000 + config.replenish_period()


class TestRateConservation:
    def test_average_rate_bounded_by_config(self):
        """Total releases over a long window never exceed the allocation:
        credits-per-period times the number of periods (+1 boundary)."""
        config = BinConfig.from_credits([2, 1] + [0] * 8)
        shaper = MittsShaper(config)
        period = config.replenish_period()
        horizon = 50 * period
        now, releases = 0, 0
        while True:
            release = shaper.earliest_issue(now)
            if release is None or release > horizon:
                break
            shaper.issue(release, req_id=releases)
            releases += 1
            now = release
        budget = config.total_credits * (horizon // period + 1)
        assert releases <= budget
