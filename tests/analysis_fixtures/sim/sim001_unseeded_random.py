"""Fixture: SIM001 -- unseeded randomness in simulator code."""

import random


def jitter():
    rng = random.Random()  # VIOLATION: no seed expression
    return rng.randint(0, 10)


def seeded_is_fine(seed):
    rng = random.Random(seed)
    return rng.randint(0, 10)


def suppressed():
    rng = random.Random()  # simlint: disable=SIM001
    return rng.random()  # simlint: disable=SIM001
