"""Fixture: SIM008 -- silently swallowed exception."""


def unsafe_tick(component):
    try:
        component.tick()
    except Exception:  # VIOLATION: pass-only handler
        pass


def specific_handling_is_fine(component, stats):
    try:
        component.tick()
    except ValueError:
        stats.tick_errors += 1


def suppressed(component):
    try:
        component.tick()
    except Exception:  # simlint: disable=SIM008
        pass
