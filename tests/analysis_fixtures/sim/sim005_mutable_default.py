"""Fixture: SIM005 -- mutable default argument."""


def record_events(event, log=[]):  # VIOLATION
    log.append(event)
    return log


def none_default_is_fine(event, log=None):
    if log is None:
        log = []
    log.append(event)
    return log


def suppressed(event, log={}):  # simlint: disable=SIM005
    log[event] = True
    return log
