"""Fixture: SIM004 -- hash-ordered iteration driving event scheduling."""


class Broadcaster:
    def __init__(self, engine, listeners):
        self.engine = engine
        self.listeners = listeners

    def notify_all(self, when):
        for name, callback in self.listeners.items():  # VIOLATION
            self.engine.schedule(when, callback)

    def sorted_is_fine(self, when):
        for name, callback in sorted(self.listeners.items()):
            self.engine.schedule(when, callback)

    def suppressed(self, when):
        for callback in self.listeners.values():  # simlint: disable=SIM004
            self.engine.schedule(when, callback)
