"""Fixture: SIM002 -- wall-clock read inside simulator code."""

import time


def sample_latency():
    started = time.perf_counter()  # VIOLATION: wall clock in sim code
    return started


def cycle_time_is_fine(engine):
    return engine.now


def suppressed():
    return time.time()  # simlint: disable=SIM002
