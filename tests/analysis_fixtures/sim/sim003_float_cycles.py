"""Fixture: SIM003 -- float value flowing into a cycle argument."""


def reschedule(engine, callback, period):
    engine.schedule(engine.now + period * 1.5, callback)  # VIOLATION


def integer_cycles_are_fine(engine, callback, period):
    engine.schedule(engine.now + (period * 3) // 2, callback)


def suppressed(engine, callback, period):
    engine.schedule_in(period / 2, callback)  # simlint: disable=SIM003
