"""Fixture: SIM006 -- schedule lambda late-binding a loop variable."""


def drain(engine, requests, complete):
    for request in requests:
        engine.schedule(request.ready, lambda: complete(request))  # VIOLATION


def default_binding_is_fine(engine, requests, complete):
    for request in requests:
        engine.schedule(request.ready, lambda r=request: complete(r))


def suppressed(engine, requests, complete):
    for request in requests:
        engine.schedule_in(1, lambda: complete(request))  # simlint: disable=SIM006
