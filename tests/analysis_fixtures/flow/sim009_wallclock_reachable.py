"""SIM009 fixture: a wall-clock read two calls below ``SimSystem.run``.

Per-file SIM002 sees only this file's imports; the violation here is the
*reachability*: ``run -> _helper -> _measure`` crosses two function
boundaries before touching ``time.time()``.
"""

import time


def _measure():
    return time.time()  # VIOLATION


def _helper():
    return _measure()


def _sanctioned_probe():
    # Waived at the effect site, exactly like the per-file pragmas.
    return time.monotonic()  # simlint: disable=SIM009


class SimSystem:
    __slots__ = ("cycles", "probe")

    def __init__(self):
        self.cycles = 0
        self.probe = 0

    def run(self, until):
        self.cycles = _helper()
        self.probe = _sanctioned_probe()
