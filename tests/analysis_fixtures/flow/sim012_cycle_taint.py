"""SIM012 fixture: a float reaches a schedule site *through dataflow*.

Per-file SIM003 cannot see this: the cycle argument is a plain name, and
the division that taints it lives in a different function entirely.
"""


class Engine:
    __slots__ = ()

    def schedule(self, when, callback):
        pass


def _average_latency(samples):
    return sum(samples) / len(samples)


def _arm(engine: Engine, samples, callback):
    delay = _average_latency(samples)
    engine.schedule(delay, callback)  # VIOLATION


def _arm_legacy(engine: Engine, samples, callback):
    delay = _average_latency(samples)
    engine.schedule(delay, callback)  # simlint: disable=SIM012
