"""SIM014 fixture: a JobSpec callable a worker process cannot import.

A lambda has no ``module:qualname``; the spec serializes fine on the
driver and then fails (or worse, silently closes over stale state) when
the worker tries to resolve it.
"""


class JobSpec:
    __slots__ = ()

    @staticmethod
    def create(name, fn, *args, **kwargs):
        return (name, fn, args, kwargs)


def sweep_point(value):
    return value * 2


def build_jobs():
    good = JobSpec.create("ok", sweep_point, 1)
    bad = JobSpec.create("bad", lambda value: value, 1)  # VIOLATION
    return [good, bad]


def build_legacy():
    return JobSpec.create("legacy",  # simlint: disable=SIM014
                          lambda value: value, 2)
