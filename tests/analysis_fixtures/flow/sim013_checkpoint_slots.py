"""SIM013 fixture: a slotless class inside the checkpoint object graph.

``StatCounters`` never appears in any resilience code -- it is reachable
only because ``SimSystem.__init__`` stores one on ``self``, which is
exactly what the pickler follows.
"""


class StatCounters:  # VIOLATION
    def __init__(self):
        self.hits = 0
        self.misses = 0


class DebugProbe:  # simlint: disable=SIM013
    def __init__(self):
        self.samples = []


class SimSystem:
    __slots__ = ("stats", "probe", "cycles")

    def __init__(self):
        self.stats = StatCounters()
        self.probe = DebugProbe()
        self.cycles = 0

    def run(self, until):
        self.cycles = until
