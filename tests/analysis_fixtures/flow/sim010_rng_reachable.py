"""SIM010 fixture: global RNG reached through a *scheduled callback*.

The root here is not ``SimSystem.run`` -- it is ``Telemetry.sample``,
which only becomes a simulation root because ``start`` hands it to
``engine.schedule_in`` as a pre-bound callback.
"""

import random


class Engine:
    __slots__ = ()

    def schedule_in(self, delay, callback):
        pass


def _jitter():
    return random.randrange(4)  # VIOLATION


def _seeded_fallback():
    return random.choice([1, 2])  # simlint: disable=SIM010


class Telemetry:
    __slots__ = ("engine", "samples")

    def __init__(self, engine: Engine):
        self.engine = engine
        self.samples = 0

    def sample(self):
        self.samples = _jitter() + _seeded_fallback()

    def start(self):
        self.engine.schedule_in(16, self.sample)
