"""SIM011 fixture: ambient filesystem/env access below ``SimSystem.run``.

Reading a calibration file mid-run makes the result depend on the
machine the simulation happens to run on; the driver layer should read
it once and pass the values in.
"""

import os


def _load_calibration(path):
    with open(path) as handle:  # VIOLATION
        return handle.read()


def _debug_enabled():
    return os.getenv("REPRO_DEBUG")  # simlint: disable=SIM011


class SimSystem:
    __slots__ = ("path", "table", "debug")

    def __init__(self, path):
        self.path = path
        self.table = None
        self.debug = False

    def run(self, until):
        self.table = _load_calibration(self.path)
        self.debug = bool(_debug_enabled())
