"""Fixture: SIM007 -- inline ns->cycle conversion outside repro.dram.timing."""

CORE_GHZ = 2.4


def activate_cycles(t_rcd_ns):
    return round(t_rcd_ns * CORE_GHZ)  # VIOLATION: inline ns arithmetic


def through_timing_is_fine(timing):
    return timing.t_rcd


def suppressed(latency_ns):
    return latency_ns * 2  # simlint: disable=SIM007
