"""Macro-tick shaper replenishment: eligibility, equivalence, dormancy.

The pump (:class:`~repro.core.macrotick.MacroTickPump`) is a pure
optimisation: one vectorized reset of every shaper's credit matrix at the
common ``T_r`` boundary instead of per-shaper lazy catch-up.  Every test
here pins the bit-neutrality claim -- pumped and lazy runs must agree on
the full statistics snapshot -- and the edges where the pump must *not*
act: staggered phases, foreign limiters, and mid-run reconfiguration.
"""

from dataclasses import replace

import pytest

from repro.analysis import contracts
from repro.core.bins import BinConfig
from repro.core.limiter import NoLimiter
from repro.core.macrotick import MacroTickPump
from repro.core.shaper import MittsShaper
from repro.sched.base import FrFcfsScheduler
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.sim.wheel import SPAN
from repro.workloads.mixes import workload_traces

CYCLES = 60_000
CREDITS = [4, 4, 3, 3, 2, 2, 1, 1, 1, 1]

#: contracts runs use the checked components and never attach the pump,
#: so pump-presence assertions only hold with contracts off (equivalence
#: and validation tests run in both modes)
needs_fused = pytest.mark.skipif(
    contracts.is_enabled(),
    reason="pump attaches only on the fused (contracts-off) path")


def _build(macro_tick: str = "auto", kernel: str = "batched",
           phase_stride: int = 0, mix: int = 2) -> SimSystem:
    traces = workload_traces(mix, seed=5)
    config = replace(SCALED_MULTI_CONFIG, kernel=kernel,
                     macro_tick=macro_tick)
    limiters = [MittsShaper(BinConfig.from_credits(CREDITS),
                            phase=phase_stride * i)
                for i in range(len(traces))]
    return SimSystem(traces, config=config, limiters=limiters,
                     scheduler=FrFcfsScheduler(len(traces)))


class TestEligibility:
    @needs_fused
    def test_attaches_on_aligned_mitts_shapers(self):
        system = _build("auto")
        assert system._pump is not None
        period = system.ports[0].limiter.replenisher.period
        assert system._pump.period == period

    def test_staggered_phases_stay_lazy(self):
        assert _build("auto", phase_stride=17)._pump is None

    def test_off_mode_never_attaches(self):
        assert _build("off")._pump is None

    def test_heap_kernel_never_attaches(self):
        assert _build("auto", kernel="heap")._pump is None

    def test_unshaped_ports_stay_lazy(self):
        config = replace(SCALED_MULTI_CONFIG, macro_tick="auto")
        system = SimSystem(workload_traces(1, seed=5), config=config)
        assert system._pump is None

    def test_force_on_ineligible_raises(self):
        with pytest.raises(ValueError, match="macro_tick"):
            _build("force", phase_stride=17)

    @needs_fused
    def test_force_on_eligible_attaches(self):
        assert _build("force")._pump is not None


class TestEquivalence:
    def test_pumped_matches_lazy(self):
        pumped = _build("auto")
        lazy = _build("off")
        if not contracts.is_enabled():
            assert pumped._pump is not None
        pumped.run(CYCLES)
        lazy.run(CYCLES)
        assert pumped.stats.snapshot() == lazy.stats.snapshot()

    def test_pumped_matches_heap_kernel(self):
        pumped = _build("auto")
        heap = _build(kernel="heap")
        pumped.run(CYCLES)
        heap.run(CYCLES)
        assert pumped.stats.snapshot() == heap.stats.snapshot()

    def test_every_crossing_macro_tick_boundaries(self):
        # A periodic observer whose period exceeds both T_r and the wheel
        # span: its callbacks ride the overflow heap, interleave with pump
        # ticks, and must fire at exactly the same cycles as under the
        # lazy path without perturbing the run.  (Raw ``state.counts``
        # between a boundary and the next decision is the one documented
        # pumped-vs-lazy difference, so the observer reads time only.)
        def drive(macro_tick):
            system = _build(macro_tick)
            period = SPAN + 1000
            observed = []
            system.every(period,
                         lambda: observed.append(system.engine.now))
            system.run(CYCLES)
            return observed, system.stats.snapshot()

        pumped_log, pumped_snapshot = drive("auto")
        lazy_log, lazy_snapshot = drive("off")
        assert pumped_log \
            == [(i + 1) * (SPAN + 1000) for i in range(len(pumped_log))]
        assert len(pumped_log) == CYCLES // (SPAN + 1000)
        assert pumped_log == lazy_log
        assert pumped_snapshot == lazy_snapshot


class TestDormancy:
    def test_limiter_swap_sends_pump_dormant(self):
        # Swapping one port's limiter mid-run (the online tuner's move)
        # breaks the common boundary; the pump must stop rescheduling and
        # the run must still match a never-pumped system that underwent
        # the identical swap.
        def drive(macro_tick):
            system = _build(macro_tick)
            swap_at = system.ports[0].limiter.replenisher.period * 3 + 7

            def swap():
                system.set_limiter(0, NoLimiter())

            system.engine.schedule(swap_at, swap)
            system.run(CYCLES)
            return system

        pumped = drive("auto")
        lazy = drive("off")
        assert pumped.stats.snapshot() == lazy.stats.snapshot()

    @needs_fused
    def test_dormant_pump_stops_rescheduling(self):
        system = _build("auto")
        pump = system._pump
        system.set_limiter(0, NoLimiter())
        boundary = system.ports[1].limiter.replenisher._next
        system.run(boundary + 2 * pump.period)
        # After going dormant the pump schedules no further ticks: only
        # lazy replenishment advances the remaining shapers' clocks.
        assert MacroTickPump.eligible(system) is None


class TestReplenishedRows:
    def test_batched_rows_match_scalar_reset(self):
        shapers = [MittsShaper(BinConfig.from_credits(CREDITS))
                   for _ in range(4)]
        for index, shaper in enumerate(shapers):
            shaper.state.counts = [max(0, c - index) for c in CREDITS]
        rows = MacroTickPump._replenished_rows(shapers)
        assert rows == [list(CREDITS)] * len(shapers)
