"""Module-level job functions and evaluators for the fabric tests.

Queue workers resolve callables by ``module:qualname`` path and pickle
their arguments, so everything here must be importable at module scope
(same convention as ``tests/_runner_jobs.py``).
"""

from dataclasses import dataclass
from typing import Tuple


def add_one(x):
    return x + 1


def scaled_metric(x, factor=10):
    """Deterministic dict-valued job (exercises metric extraction)."""
    return {"scaled": float(x * factor), "x": float(x)}


def fail_on_odd(x):
    """Deterministic ValueError for odd inputs (never retried)."""
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


def always_crash(x):
    """Failure outside the deterministic lineage (RuntimeError), raised
    every time -- the fabric cannot prove retrying is futile, so it must
    burn the attempt ledger down to quarantine."""
    raise RuntimeError(f"transient-looking failure for {x}")


def tabular_result(name, seed=1, scale="smoke"):
    """A Result-shaped experiment payload (stored-figure round trip)."""
    from repro.experiments.common import Result

    rows = [[name, seed + offset, float((seed + offset) * 2)]
            for offset in range(3)]
    return Result(experiment=name, title=f"table for {name}",
                  headers=["name", "point", "value"], rows=rows,
                  summary={"points": float(len(rows)),
                           "seed": float(seed)})


@dataclass(frozen=True)
class ToyEvaluator:
    """Picklable, content-hashable stand-in for FitnessEvaluator.

    Fitness peaks when every core's credit vector matches ``target`` --
    the same synthetic objective the GA unit tests use, packaged as an
    importable object so fabric workers can rebuild it.
    """

    target: Tuple[int, ...] = (3, 0, 0, 0, 0, 0, 0, 0, 0, 5)

    def __call__(self, genome) -> float:
        error = 0
        for config in genome:
            error += sum(abs(c - t)
                         for c, t in zip(config.credits, self.target))
        return -float(error)
