"""Unit tests for the source-limiter baselines."""

import pytest

from repro.core.limiter import (NoLimiter, StaticLimiter,
                                TokenBucketLimiter)


class TestNoLimiter:
    def test_always_immediate(self):
        limiter = NoLimiter()
        assert limiter.earliest_issue(0) == 0
        assert limiter.earliest_issue(12345) == 12345
        limiter.issue(12345)

    def test_never_stalls_forever(self):
        assert not NoLimiter().stall_forever()


class TestStaticLimiter:
    def test_first_issue_immediate(self):
        limiter = StaticLimiter(40)
        assert limiter.earliest_issue(7) == 7

    def test_enforces_minimum_spacing(self):
        limiter = StaticLimiter(40)
        limiter.issue(100)
        assert limiter.earliest_issue(110) == 140

    def test_spacing_measured_from_last_release(self):
        limiter = StaticLimiter(40)
        limiter.issue(0)
        limiter.issue(40)
        assert limiter.earliest_issue(50) == 80

    def test_no_banking_of_idle_time(self):
        """A long idle period earns no extra burst allowance."""
        limiter = StaticLimiter(40)
        limiter.issue(0)
        # After a 400-cycle gap, the next two must still be spaced.
        assert limiter.earliest_issue(400) == 400
        limiter.issue(400)
        assert limiter.earliest_issue(401) == 440

    def test_early_issue_rejected(self):
        limiter = StaticLimiter(40)
        limiter.issue(0)
        with pytest.raises(ValueError):
            limiter.issue(10)

    def test_set_interval(self):
        limiter = StaticLimiter(40)
        limiter.issue(0)
        limiter.set_interval(10)
        assert limiter.earliest_issue(5) == 10

    def test_zero_interval_passthrough(self):
        limiter = StaticLimiter(0)
        limiter.issue(0)
        assert limiter.earliest_issue(0) == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            StaticLimiter(-1)
        limiter = StaticLimiter(1)
        with pytest.raises(ValueError):
            limiter.set_interval(-5)


class TestTokenBucket:
    def test_starts_full(self):
        limiter = TokenBucketLimiter(fill_interval=10, capacity=4)
        for cycle in range(4):
            assert limiter.earliest_issue(cycle) == cycle
            limiter.issue(cycle)

    def test_empty_bucket_waits_for_fill(self):
        limiter = TokenBucketLimiter(fill_interval=10, capacity=1)
        limiter.issue(0)
        assert limiter.earliest_issue(0) == 10

    def test_idle_time_banks_up_to_capacity(self):
        limiter = TokenBucketLimiter(fill_interval=10, capacity=3)
        for _ in range(3):
            limiter.issue(0)
        # 100 idle cycles accrue 10 tokens but cap at 3.
        limiter._accrue(100)
        assert limiter._tokens == pytest.approx(3.0)

    def test_burst_after_idle(self):
        limiter = TokenBucketLimiter(fill_interval=10, capacity=3)
        for _ in range(3):
            limiter.issue(0)
        for _ in range(3):
            cycle = limiter.earliest_issue(100)
            assert cycle == 100
            limiter.issue(cycle)
        assert limiter.earliest_issue(100) > 100

    def test_issue_without_token_rejected(self):
        limiter = TokenBucketLimiter(fill_interval=10, capacity=1)
        limiter.issue(0)
        with pytest.raises(ValueError):
            limiter.issue(1)

    @pytest.mark.parametrize("kwargs", [
        dict(fill_interval=0, capacity=1),
        dict(fill_interval=1, capacity=0),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucketLimiter(**kwargs)

    def test_capacity_one_behaves_like_static(self):
        bucket = TokenBucketLimiter(fill_interval=10, capacity=1)
        static = StaticLimiter(10)
        for start in (0, 25, 31):
            b = bucket.earliest_issue(start)
            s = static.earliest_issue(start)
            assert abs(b - s) <= 1
            bucket.issue(b)
            static.issue(s)
