"""Unit tests for the IaaS economics layer."""

import pytest

from repro.cloud.customer import Customer, deadline_utility, linear_utility
from repro.cloud.market import Bid, CreditMarket, demand_to_bids
from repro.cloud.provision import (best_static_config, even_split_configs,
                                   heterogeneous_static_configs,
                                   perf_per_cost)
from repro.core.bins import BinConfig, BinSpec
from repro.core.pricing import credit_price


SPEC = BinSpec()


class TestCustomer:
    def test_linear_utility(self):
        customer = Customer(name="a", benchmark="mcf", budget=10.0)
        assert customer.value_of(42.0) == 42.0

    def test_deadline_utility_saturates(self):
        utility = deadline_utility(100.0)
        assert utility(150.0) == 100.0
        assert utility(50.0) == 25.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Customer(name="a", benchmark="mcf", budget=-1.0)

    def test_deadline_threshold_validated(self):
        with pytest.raises(ValueError):
            deadline_utility(0.0)


class TestMarket:
    def customers(self):
        return [Customer(name="rich", benchmark="mcf", budget=1000.0),
                Customer(name="poor", benchmark="sjeng", budget=1.0)]

    def test_supply_length_validated(self):
        with pytest.raises(ValueError):
            CreditMarket(SPEC, supply=[1, 2, 3])

    def test_highest_value_bid_wins_scarce_supply(self):
        market = CreditMarket(SPEC, supply=[1] + [0] * 9)
        price = market.floor_price(0)
        customers = self.customers()
        bids = [Bid("rich", 0, 1, price * 2.0),
                Bid("poor", 0, 1, price * 1.1)]
        outcome = market.clear(customers, bids)
        assert outcome.allocations["rich"].credits[0] == 1
        assert outcome.allocations["poor"].credits[0] == 0

    def test_below_reserve_not_sold(self):
        market = CreditMarket(SPEC, supply=[5] + [0] * 9)
        customers = self.customers()
        bids = [Bid("rich", 0, 5, market.floor_price(0) * 0.5)]
        outcome = market.clear(customers, bids)
        assert outcome.allocations["rich"].total_credits == 0
        assert outcome.unsold[0] == 5

    def test_budget_limits_purchase(self):
        market = CreditMarket(SPEC, supply=[100] + [0] * 9)
        price = market.floor_price(0)
        poor = Customer(name="poor", benchmark="sjeng",
                        budget=price * 2.5)
        bids = [Bid("poor", 0, 100, price * 2)]
        outcome = market.clear([poor], bids)
        assert outcome.allocations["poor"].credits[0] == 2
        assert outcome.spend["poor"] <= poor.budget

    def test_revenue_matches_spend(self):
        market = CreditMarket(SPEC, supply=[4] * 10)
        customers = self.customers()
        bids = demand_to_bids(customers[0],
                              BinConfig.from_credits([2] * 10),
                              markup=1.5)
        outcome = market.clear(customers, bids)
        assert outcome.revenue == pytest.approx(
            sum(outcome.spend.values()))

    def test_unknown_customer_rejected(self):
        market = CreditMarket(SPEC, supply=[1] * 10)
        with pytest.raises(ValueError):
            market.clear(self.customers(),
                         [Bid("stranger", 0, 1, 100.0)])

    def test_invalid_bin_rejected(self):
        market = CreditMarket(SPEC, supply=[1] * 10)
        with pytest.raises(ValueError):
            market.clear(self.customers(), [Bid("rich", 99, 1, 100.0)])

    def test_purchase_recorded_on_customer(self):
        market = CreditMarket(SPEC, supply=[4] * 10)
        customers = self.customers()
        market.clear(customers, demand_to_bids(
            customers[0], BinConfig.from_credits([1] * 10)))
        assert customers[0].purchased is not None

    def test_demand_to_bids_skips_empty_bins(self):
        customer = Customer(name="a", benchmark="mcf", budget=10.0)
        bids = demand_to_bids(customer, BinConfig.single_bin(3, 5))
        assert len(bids) == 1
        assert bids[0].bin_index == 3
        assert bids[0].quantity == 5

    def test_floor_price_matches_pricing_module(self):
        market = CreditMarket(SPEC, supply=[1] * 10)
        assert market.floor_price(2) == credit_price(SPEC, 2)


class TestProvisionHelpers:
    def test_perf_per_cost(self):
        config = BinConfig.single_bin(9, 4)
        value = perf_per_cost(1000.0, config)
        assert value > 0
        assert value < 1000.0  # cost exceeds the bare core

    def test_even_split(self):
        configs = even_split_configs(SPEC, 4, total_credits=32)
        assert len(configs) == 4
        assert all(c.total_credits == 8 for c in configs)
        assert len({c.credits for c in configs}) == 1

    def test_heterogeneous_split_proportional(self):
        configs = heterogeneous_static_configs(SPEC, [3.0, 1.0],
                                               total_credits=32)
        assert configs[0].total_credits > configs[1].total_credits

    def test_heterogeneous_requires_demand(self):
        with pytest.raises(ValueError):
            heterogeneous_static_configs(SPEC, [0.0, 0.0], 32)

    def test_best_static_config_searches_single_bins(self):
        from repro.sim.system import SCALED_SINGLE_CONFIG
        from repro.workloads.benchmarks import trace_for
        config, score = best_static_config(
            trace_for("sjeng"), SCALED_SINGLE_CONFIG, cycles=5_000,
            max_credits=4)
        assert score > 0
        assert sum(1 for c in config.credits if c > 0) == 1
