"""Unit tests for bin geometry and configurations."""

import pytest

from repro.core.bins import BinConfig, BinSpec


class TestBinSpec:
    def test_default_geometry_matches_paper(self):
        spec = BinSpec()
        assert spec.num_bins == 10
        assert spec.interval_length == 10
        assert spec.max_credits == 1024

    def test_centers_are_bin_midpoints(self):
        spec = BinSpec()
        assert spec.center(0) == 5.0
        assert spec.center(1) == 15.0
        assert spec.center(9) == 95.0

    def test_centers_tuple_matches_center(self):
        spec = BinSpec(num_bins=4, interval_length=20)
        assert spec.centers == tuple(spec.center(i) for i in range(4))

    def test_lower_edge(self):
        spec = BinSpec()
        assert spec.lower_edge(0) == 0
        assert spec.lower_edge(3) == 30

    def test_bin_for_interarrival_boundaries(self):
        spec = BinSpec()
        assert spec.bin_for_interarrival(0) == 0
        assert spec.bin_for_interarrival(9) == 0
        assert spec.bin_for_interarrival(10) == 1
        assert spec.bin_for_interarrival(95) == 9

    def test_bin_for_interarrival_clamps_to_last_bin(self):
        spec = BinSpec()
        assert spec.bin_for_interarrival(100) == 9
        assert spec.bin_for_interarrival(10_000) == 9

    def test_bin_for_negative_interarrival_rejected(self):
        with pytest.raises(ValueError):
            BinSpec().bin_for_interarrival(-1)

    def test_center_out_of_range_rejected(self):
        spec = BinSpec()
        with pytest.raises(IndexError):
            spec.center(10)
        with pytest.raises(IndexError):
            spec.lower_edge(-1)

    @pytest.mark.parametrize("kwargs", [
        dict(num_bins=0), dict(interval_length=0), dict(max_credits=0),
    ])
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BinSpec(**kwargs)

    def test_bandwidth_of_bin_decreases_with_index(self):
        spec = BinSpec()
        bandwidths = [spec.bandwidth_of_bin(i) for i in range(10)]
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_custom_interval_length(self):
        spec = BinSpec(interval_length=32)
        assert spec.center(0) == 16.0
        assert spec.bin_for_interarrival(31) == 0
        assert spec.bin_for_interarrival(32) == 1


class TestBinConfig:
    def test_from_credits_defaults_to_paper_spec(self):
        config = BinConfig.from_credits([1] * 10)
        assert config.spec.num_bins == 10
        assert config.total_credits == 10

    def test_credit_vector_length_must_match(self):
        with pytest.raises(ValueError):
            BinConfig(spec=BinSpec(), credits=(1, 2, 3))

    def test_negative_credits_rejected(self):
        with pytest.raises(ValueError):
            BinConfig.from_credits([1] * 9 + [-1])

    def test_credits_beyond_max_rejected(self):
        spec = BinSpec(max_credits=8)
        with pytest.raises(ValueError):
            BinConfig(spec=spec, credits=tuple([9] + [0] * 9))

    def test_single_bin_constructor(self):
        config = BinConfig.single_bin(3, 7)
        assert config.credits[3] == 7
        assert config.total_credits == 7

    def test_unlimited_is_fastest_bin(self):
        config = BinConfig.unlimited()
        assert config.credits[0] == config.spec.max_credits
        assert sum(config.credits[1:]) == 0

    def test_average_interval_single_bin(self):
        config = BinConfig.single_bin(2, 5)  # t_2 = 25
        assert config.average_interval() == pytest.approx(25.0)

    def test_average_interval_weighted(self):
        config = BinConfig.from_credits([1, 0, 0, 0, 0, 0, 0, 0, 0, 1])
        # (5 + 95) / 2
        assert config.average_interval() == pytest.approx(50.0)

    def test_average_interval_empty_config_is_infinite(self):
        config = BinConfig.from_credits([0] * 10)
        assert config.average_interval() == float("inf")

    def test_replenish_period_is_credit_weighted_time(self):
        config = BinConfig.single_bin(0, 10)  # 10 credits x t=5
        assert config.replenish_period() == 50

    def test_average_bandwidth_equals_line_over_interval(self):
        config = BinConfig.from_credits([4, 2, 0, 1, 0, 0, 0, 0, 0, 0])
        expected = 64 / config.average_interval()
        assert config.average_bandwidth() == pytest.approx(expected,
                                                           rel=0.05)

    def test_with_credits_functional_update(self):
        config = BinConfig.from_credits([1] * 10)
        updated = config.with_credits(0, 5)
        assert updated.credits[0] == 5
        assert config.credits[0] == 1  # original unchanged

    def test_scaled_halving(self):
        config = BinConfig.from_credits([8, 4, 2, 0, 0, 0, 0, 0, 0, 0])
        half = config.scaled(0.5)
        assert half.credits[:3] == (4, 2, 1)

    def test_scaled_clamps_to_max(self):
        spec = BinSpec(max_credits=10)
        config = BinConfig(spec=spec, credits=tuple([10] + [0] * 9))
        doubled = config.scaled(2.0)
        assert doubled.credits[0] == 10

    def test_as_list_copies(self):
        config = BinConfig.from_credits([1] * 10)
        listed = config.as_list()
        listed[0] = 99
        assert config.credits[0] == 1

    def test_bandwidth_identity_b_avg_is_inverse_i_avg(self):
        """B_avg * I_avg == line_bytes: the Section IV-C identity."""
        config = BinConfig.from_credits([3, 1, 4, 1, 5, 0, 2, 0, 0, 1])
        product = config.average_bandwidth() * config.average_interval()
        assert product == pytest.approx(64, rel=0.02)
