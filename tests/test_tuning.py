"""Unit tests for the GA machinery: genome ops, offline GA, baselines."""

import random

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.tuning.ga import GaParams, GeneticAlgorithm
from repro.tuning.genome import (crossover, mutate, random_config,
                                 random_genome, seed_genomes)
from repro.tuning.hillclimb import HillClimber, RandomSearch


SPEC = BinSpec()


def synthetic_fitness(target):
    """Fitness peaked when each core's credits match ``target``."""

    def fitness(genome):
        error = 0
        for config in genome:
            error += sum(abs(c - t)
                         for c, t in zip(config.credits, target))
        return -float(error)

    return fitness


class TestGenomeOps:
    def test_random_config_valid(self):
        rng = random.Random(0)
        for _ in range(50):
            config = random_config(SPEC, rng)
            assert config.total_credits >= 1
            assert all(0 <= c <= SPEC.max_credits for c in config.credits)

    def test_random_genome_size(self):
        rng = random.Random(0)
        genome = random_genome(SPEC, 4, rng)
        assert len(genome) == 4

    def test_crossover_mixes_parents(self):
        rng = random.Random(1)
        a = [BinConfig.from_credits([0] * 10)]
        b = [BinConfig.from_credits([9] * 10)]
        child = crossover(a, b, rng)[0]
        assert set(child.credits) <= {0, 9}
        assert 0 in child.credits and 9 in child.credits

    def test_crossover_length_mismatch(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            crossover([BinConfig.unlimited()],
                      [BinConfig.unlimited()] * 2, rng)

    def test_mutate_stays_valid(self):
        rng = random.Random(2)
        genome = [BinConfig.from_credits([5] * 10)]
        for _ in range(30):
            genome = mutate(genome, rng, rate=0.5)
            assert genome[0].total_credits >= 1

    def test_mutate_zero_rate_identity(self):
        rng = random.Random(3)
        genome = [BinConfig.from_credits([5] * 10)]
        assert mutate(genome, rng, rate=0.0)[0].credits \
            == genome[0].credits

    def test_mutation_rate_validated(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            mutate([BinConfig.unlimited()], rng, rate=1.5)

    def test_seed_genomes_shapes(self):
        seeds = seed_genomes(SPEC, 3)
        assert all(len(genome) == 3 for genome in seeds)
        # The generous seed concentrates on bin 0.
        assert seeds[0][0].credits[0] > 0


class TestGaParams:
    @pytest.mark.parametrize("kwargs", [
        dict(generations=0),
        dict(population=1),
        dict(elite=12, population=12),
        dict(tournament=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GaParams(**kwargs)


class TestGeneticAlgorithm:
    def test_improves_on_synthetic_objective(self):
        target = (8, 4, 2, 1, 0, 0, 0, 0, 0, 0)
        ga = GeneticAlgorithm(synthetic_fitness(target), SPEC, 1,
                              GaParams(generations=12, population=16,
                                       seed=5))
        result = ga.run()
        assert result.history[-1] >= result.history[0]
        assert result.best_fitness > -40

    def test_reproducible_with_same_seed(self):
        target = (4, 4, 0, 0, 0, 0, 0, 0, 0, 0)

        def run():
            ga = GeneticAlgorithm(synthetic_fitness(target), SPEC, 1,
                                  GaParams(generations=4, population=6,
                                           seed=9))
            return ga.run().best_fitness

        assert run() == run()

    def test_seed_genome_in_initial_population(self):
        target = (7, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        perfect = [BinConfig.from_credits(list(target))]
        ga = GeneticAlgorithm(synthetic_fitness(target), SPEC, 1,
                              GaParams(generations=1, population=4,
                                       seed=1),
                              seed_genomes=[perfect])
        result = ga.run()
        assert result.best_fitness == 0.0

    def test_repair_applied_to_every_genome(self):
        def repair(config):
            return BinConfig.single_bin(0, 3, config.spec)

        seen = []

        def fitness(genome):
            seen.append(genome[0].credits)
            return 0.0

        ga = GeneticAlgorithm(fitness, SPEC, 1,
                              GaParams(generations=2, population=4,
                                       seed=2),
                              repair=repair)
        ga.run()
        assert all(credits == (3,) + (0,) * 9 for credits in seen)

    def test_evaluation_count_is_deduplicated(self):
        ga = GeneticAlgorithm(lambda g: 0.0, SPEC, 2,
                              GaParams(generations=3, population=5,
                                       seed=1))
        result = ga.run()
        # Naive budget is generations x population = 15; memoisation
        # accounts for every one of them as either a real evaluation or
        # a free memo hit.
        assert result.evaluations + result.memo_hits == 15
        # Elites (2 per generation) survive unchanged into generations 2
        # and 3, so at least 4 scores were served from the memo.
        assert result.memo_hits >= 4
        assert result.evaluations <= 11

    def test_elites_not_rescored(self):
        calls = []

        def fitness(genome):
            calls.append(tuple(config.credits for config in genome))
            return -float(sum(sum(c.credits) for c in genome))

        ga = GeneticAlgorithm(fitness, SPEC, 1,
                              GaParams(generations=4, population=6,
                                       seed=3))
        result = ga.run()
        # Every fitness call was for a distinct genome...
        assert len(calls) == len(set(calls)) == result.evaluations
        # ...and the best genome was only ever scored once even though it
        # survived as an elite every generation.
        best_key = tuple(config.credits for config in result.best_genome)
        assert calls.count(best_key) == 1

    def test_memoisation_does_not_change_search(self):
        # The memo only removes redundant work: trajectory, best genome
        # and history must match a by-hand unmemoised reimplementation --
        # approximated here by checking two identical runs agree and that
        # history is consistent with best_fitness.
        target = (4, 2, 0, 0, 0, 0, 0, 0, 0, 1)
        params = GaParams(generations=5, population=8, seed=11)
        first = GeneticAlgorithm(synthetic_fitness(target), SPEC, 2,
                                 params).run()
        second = GeneticAlgorithm(synthetic_fitness(target), SPEC, 2,
                                  params).run()
        assert first.best_genome == second.best_genome
        assert first.history == second.history
        assert first.best_fitness == max(first.history)

    def test_batch_evaluator_matches_callable(self):
        target = (3, 0, 0, 0, 0, 0, 0, 0, 0, 5)
        fitness = synthetic_fitness(target)
        params = GaParams(generations=4, population=6, seed=9)
        plain = GeneticAlgorithm(fitness, SPEC, 2, params).run()
        batches = []

        def batch_evaluator(genomes):
            batches.append(len(genomes))
            return [fitness(genome) for genome in genomes]

        batched = GeneticAlgorithm(fitness, SPEC, 2, params,
                                   batch_evaluator=batch_evaluator).run()
        assert batched.best_genome == plain.best_genome
        assert batched.history == plain.history
        assert batched.evaluations == plain.evaluations
        assert sum(batches) == batched.evaluations

    def test_batch_evaluator_size_mismatch_rejected(self):
        ga = GeneticAlgorithm(lambda g: 0.0, SPEC, 1,
                              GaParams(generations=1, population=3,
                                       seed=1),
                              batch_evaluator=lambda genomes: [0.0])
        with pytest.raises(ValueError):
            ga.run()


class TestBaselineOptimizers:
    def test_hill_climber_reaches_local_optimum(self):
        target = (6, 0, 0, 0, 0, 0, 0, 0, 0, 0)
        hill = HillClimber(synthetic_fitness(target), SPEC, 1,
                           budget=400, seed=4)
        result = hill.run()
        assert result.best_fitness >= result.history[0]

    def test_random_search_budget_respected(self):
        rand = RandomSearch(lambda g: 0.0, SPEC, 1, budget=17, seed=4)
        assert rand.run().evaluations == 17

    def test_random_search_history_monotone(self):
        target = (3, 3, 3, 0, 0, 0, 0, 0, 0, 0)
        rand = RandomSearch(synthetic_fitness(target), SPEC, 1,
                            budget=30, seed=4)
        history = rand.run().history
        assert history == sorted(history)
