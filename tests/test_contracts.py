"""Tests for the runtime invariant contracts (repro.analysis.contracts).

Contracts must (a) catch genuine invariant violations when enabled,
(b) cost nothing semantically when disabled, and (c) never perturb
simulation results (the latter is pinned in tests/test_determinism.py).
"""

import heapq
import subprocess
import sys

import pytest

from repro.analysis import ContractViolation, contracts
from repro.core.bins import BinConfig
from repro.core.credits import CreditState
from repro.dram.bank import Bank
from repro.dram.device import DramDevice
from repro.dram.timing import DDR3_1333
from repro.sim.engine import Engine, _NO_ARG
from repro.sim.memctrl import MemoryController
from repro.sim.request import MemoryRequest


@pytest.fixture
def contracts_on():
    with contracts.enabled_scope():
        yield


class TestToggle:
    def test_default_follows_environment(self):
        # Off unless REPRO_CONTRACTS opts in (the suite also runs under
        # REPRO_CONTRACTS=1, where the default is on).
        assert contracts.is_enabled() == contracts._env_enabled()

    def test_enabled_scope_restores_previous_state(self):
        before = contracts.is_enabled()
        with contracts.enabled_scope():
            assert contracts.is_enabled()
            with contracts.enabled_scope(False):
                assert not contracts.is_enabled()
            assert contracts.is_enabled()
        assert contracts.is_enabled() == before

    def test_env_variable_activates(self):
        import os

        import repro
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        script = ("from repro.analysis import contracts; "
                  "import sys; sys.exit(0 if contracts.is_enabled() else 1)")
        for value, expected in [("1", 0), ("0", 1), ("", 1), ("yes", 0)]:
            env = dict(os.environ, REPRO_CONTRACTS=value, PYTHONPATH=src_dir)
            result = subprocess.run([sys.executable, "-c", script], env=env)
            assert result.returncode == expected, (value, expected)

    def test_check_is_noop_when_disabled(self):
        with contracts.enabled_scope(False):
            contracts.check(False, "never raised while disabled")

    def test_check_raises_when_enabled(self, contracts_on):
        with pytest.raises(ContractViolation, match="cycle 7"):
            contracts.check(False, "bad cycle %d", 7)
        contracts.check(True, "fine")

    def test_violation_is_an_assertion_error(self):
        assert issubclass(ContractViolation, AssertionError)


class TestInvariantDecorator:
    class Counter:
        def __init__(self):
            self.value = 0

        @contracts.invariant(lambda self: self.value >= 0)
        def bump(self, delta):
            self.value += delta
            return self.value

    def test_passes_through_when_holding(self, contracts_on):
        counter = self.Counter()
        assert counter.bump(3) == 3

    def test_raises_on_broken_postcondition(self, contracts_on):
        counter = self.Counter()
        with pytest.raises(ContractViolation, match="postcondition"):
            counter.bump(-1)

    def test_disabled_decorator_does_not_check(self):
        with contracts.enabled_scope(False):
            counter = self.Counter()
            assert counter.bump(-5) == -5

    def test_rejects_bad_when(self):
        with pytest.raises(ValueError):
            contracts.invariant(lambda self: True, when="sometimes")


class TestEngineContracts:
    def test_rejects_float_cycle(self, contracts_on):
        engine = Engine()
        with pytest.raises(ContractViolation, match="integer CPU cycles"):
            engine.schedule(1.5, lambda: None)

    def test_rejects_non_callable(self, contracts_on):
        engine = Engine()
        with pytest.raises(ContractViolation, match="not callable"):
            engine.schedule(1, None)

    def test_detects_time_regression(self, contracts_on):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        # Corrupt the queue behind schedule()'s back: an event in the past.
        heapq.heappush(engine._queue, (5, 999, lambda: None, _NO_ARG))
        with pytest.raises(ContractViolation, match="monotonicity"):
            engine.run()

    def test_detects_fifo_breakage(self, contracts_on):
        engine = Engine()
        # Two same-cycle events with the same sequence number can only be
        # produced by a broken scheduler; the FIFO contract must object.
        # (Assigned directly: a real heappush would refuse the duplicate.)
        engine._queue = [(5, 1, lambda: None, _NO_ARG),
                 (5, 1, lambda: None, _NO_ARG)]
        with pytest.raises(ContractViolation, match="FIFO"):
            engine.run()

    def test_clean_run_is_unaffected(self, contracts_on):
        engine = Engine()
        log = []
        for index in range(4):
            engine.schedule(3, lambda i=index: log.append(i))
        engine.run()
        assert log == [0, 1, 2, 3]

    def test_flag_captured_at_construction(self):
        # An engine built while contracts are off never checks, even if
        # they are enabled afterwards: build systems inside the scope.
        with contracts.enabled_scope(False):
            engine = Engine()
        with contracts.enabled_scope():
            engine.schedule(0.5, lambda: None)  # silently accepted
            assert Engine()._contracts


class TestCreditContracts:
    def make_state(self):
        return CreditState(
            BinConfig.from_credits([4, 2, 1, 0, 0, 0, 0, 0, 0, 0]))

    def test_normal_operations_hold(self, contracts_on):
        state = self.make_state()
        state.deduct(0)
        state.refund(0)
        state.replenish()
        assert state.counts == [4, 2, 1, 0, 0, 0, 0, 0, 0, 0]

    def test_negative_credit_is_caught(self, contracts_on):
        state = self.make_state()
        state.counts[1] = -3  # corrupted by a hypothetical scheduler bug
        with pytest.raises(ContractViolation, match="postcondition"):
            state.refund(1)

    def test_counter_count_mismatch_is_caught(self, contracts_on):
        state = self.make_state()
        state.counts.append(7)
        with pytest.raises(ContractViolation, match="postcondition"):
            state.refund(0)


class TestMemoryControllerContracts:
    class NullScheduler:
        def select(self, queue, now, controller):
            return None

        def on_complete(self, request, now):
            pass

    def make_mc(self, depth=2):
        engine = Engine()
        dram = DramDevice(DDR3_1333)
        return MemoryController(engine, dram, self.NullScheduler(),
                                complete=lambda request: None,
                                queue_depth=depth)

    def test_enqueue_respects_bound(self, contracts_on):
        mc = self.make_mc(depth=2)
        for req_id in range(5):
            mc.enqueue(MemoryRequest(core_id=0, address=64 * req_id))
        assert len(mc.queue) == 2
        assert len(mc.overflow) == 3

    def test_overfilled_queue_is_caught(self, contracts_on):
        mc = self.make_mc(depth=2)
        mc.queue = [MemoryRequest(core_id=0, address=64 * i)
                    for i in range(5)]
        with pytest.raises(ContractViolation, match="queue_depth"):
            mc.enqueue(MemoryRequest(core_id=0, address=0))


class TestBankContracts:
    def test_legal_access_sequence(self, contracts_on):
        bank = Bank(DDR3_1333)
        done = bank.access(row=3, now=0)
        assert bank.open_row == 3
        later = bank.access(row=3, now=done)
        assert later > done

    def test_float_cycle_is_caught(self, contracts_on):
        bank = Bank(DDR3_1333)
        with pytest.raises(ContractViolation, match="integers"):
            bank.access(row=1, now=2.5)

    def test_negative_cycle_is_caught(self, contracts_on):
        bank = Bank(DDR3_1333)
        with pytest.raises(ContractViolation, match="negative"):
            bank.access(row=1, now=-4)

    def test_refresh_keeps_ready_cycle_monotonic(self, contracts_on):
        bank = Bank(DDR3_1333)
        bank.access(row=1, now=0)
        before = bank.ready_cycle
        bank.refresh(now=0)
        assert bank.open_row is None
        assert bank.ready_cycle >= before
