"""Unit tests for the comparator memory schedulers."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.timing import DramTiming
from repro.sched.base import FcfsScheduler, FrFcfsScheduler
from repro.sched.fairqueue import FairQueueScheduler
from repro.sched.fst import FstController
from repro.sched.memguard import MemGuardScheduler
from repro.sched.mise import MiseScheduler
from repro.sched.tcm import TcmScheduler
from repro.sim.engine import Engine
from repro.sim.memctrl import MemoryController
from repro.sim.request import MemoryRequest
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.benchmarks import trace_for


class FakeController:
    """Just enough controller for select(): a DRAM device handle."""

    def __init__(self):
        self.dram = DramDevice(DramTiming(refresh_enabled=False))


def request(core, address, arrival=0):
    req = MemoryRequest(core_id=core, address=address)
    req.mc_arrival_cycle = arrival
    return req


class TestFcfs:
    def test_oldest_first(self):
        sched = FcfsScheduler(2)
        queue = [request(0, 0, arrival=5), request(1, 64, arrival=2)]
        assert sched.select(queue, 10, FakeController()).core_id == 1

    def test_empty_queue(self):
        assert FcfsScheduler(1).select([], 0, FakeController()) is None

    def test_on_complete_counts(self):
        sched = FcfsScheduler(2)
        sched.on_complete(request(1, 0), 10)
        assert sched.serviced == [0, 1]


class TestFrFcfs:
    def test_row_hit_preferred_over_older(self):
        controller = FakeController()
        controller.dram.service(0, 0)  # open row 0 of bank 0
        sched = FrFcfsScheduler(2)
        older_conflict = request(0, 8192 * 8, arrival=0)  # same bank, new row
        newer_hit = request(1, 64, arrival=5)
        chosen = sched.select([older_conflict, newer_hit], 10, controller)
        assert chosen is newer_hit

    def test_falls_back_to_oldest_without_hits(self):
        controller = FakeController()
        sched = FrFcfsScheduler(2)
        a = request(0, 0, arrival=3)
        b = request(1, 8192, arrival=1)
        assert sched.select([a, b], 10, controller) is b


class TestFairQueue:
    def test_alternates_between_backlogged_cores(self):
        controller = FakeController()
        sched = FairQueueScheduler(2)
        queue = [request(0, i * 64, arrival=i) for i in range(4)] \
            + [request(1, 1 << 20, arrival=0)]
        first = sched.select(queue, 0, controller)
        queue.remove(first)
        second = sched.select(queue, 0, controller)
        assert {first.core_id, second.core_id} == {0, 1}

    def test_shares_weight_selection(self):
        controller = FakeController()
        sched = FairQueueScheduler(2, shares=[4.0, 1.0])
        picks = []
        queue = [request(0, i * 64) for i in range(16)] \
            + [request(1, (1 << 20) + i * 64) for i in range(16)]
        for _ in range(10):
            chosen = sched.select(queue, 0, controller)
            queue.remove(chosen)
            picks.append(chosen.core_id)
        assert picks.count(0) > picks.count(1)

    def test_idle_core_earns_no_credit(self):
        controller = FakeController()
        sched = FairQueueScheduler(2)
        # Core 0 served a lot; core 1 idle the whole time.
        queue0 = [request(0, i * 64) for i in range(8)]
        for _ in range(8):
            chosen = sched.select(queue0, 0, controller)
            queue0.remove(chosen)
        # Now core 1 arrives: its clock catches up, not banks history.
        queue = [request(0, 1 << 16), request(1, 1 << 20)]
        chosen = sched.select(queue, 100, controller)
        assert chosen.core_id == 1  # min clock after catch-up, ties to 1?
        # After one service each, the clocks are near parity again.
        assert abs(sched.virtual_time[0] - sched.virtual_time[1]) \
            < 2 * controller.dram.timing.row_conflict_latency

    def test_invalid_shares_rejected(self):
        with pytest.raises(ValueError):
            FairQueueScheduler(2, shares=[1.0])
        with pytest.raises(ValueError):
            FairQueueScheduler(2, shares=[1.0, 0.0])


class TestTcm:
    def test_reclustering_separates_intensities(self):
        controller = FakeController()
        sched = TcmScheduler(4, quantum=100)
        # Core 3 is very intensive, cores 0-2 light.
        for _ in range(30):
            sched.on_complete(request(3, 0), 0)
        for core in range(3):
            sched.on_complete(request(core, 0), 0)
        sched.select([request(0, 0)], now=150, controller=controller)
        assert 3 not in sched.latency_cluster
        assert {0, 1, 2} <= sched.latency_cluster

    def test_latency_cluster_prioritised(self):
        controller = FakeController()
        sched = TcmScheduler(2, quantum=100)
        for _ in range(30):
            sched.on_complete(request(1, 0), 0)
        sched.on_complete(request(0, 0), 0)
        queue = [request(1, 0, arrival=0), request(0, 64, arrival=9)]
        chosen = sched.select(queue, 150, controller)
        assert chosen.core_id == 0

    def test_shuffle_changes_bandwidth_ranks(self):
        controller = FakeController()
        sched = TcmScheduler(4, quantum=50, shuffle_period=10, seed=3)
        for core in range(4):
            for _ in range(20):
                sched.on_complete(request(core, 0), 0)
        sched.select([request(0, 0)], now=60, controller=controller)
        ranks_before = dict(sched._rank)
        orders = set()
        for step in range(6):
            sched.select([request(0, 0)], now=80 + step * 10,
                         controller=controller)
            orders.add(tuple(sorted(sched._rank.items())))
        assert len(orders) > 1 or ranks_before != dict(sched._rank)

    def test_cluster_thresh_default(self):
        assert TcmScheduler(8).cluster_thresh == pytest.approx(0.25)


class TestMise:
    def test_measurement_rotates_priority(self):
        controller = FakeController()
        sched = MiseScheduler(2, epoch=100, interval=1000)
        assert sched.priority_core == 0
        sched.select([request(0, 0)], now=100, controller=controller)
        assert sched.priority_core == 1

    def test_priority_core_requests_first(self):
        controller = FakeController()
        sched = MiseScheduler(2, epoch=100, interval=1000)
        queue = [request(1, 0, arrival=0), request(0, 64, arrival=50)]
        chosen = sched.select(queue, 10, controller)
        assert chosen.core_id == 0  # measurement epoch for core 0

    def test_slowdown_estimates_update_at_interval(self):
        controller = FakeController()
        sched = MiseScheduler(2, epoch=50, interval=300)
        # Core 0 fast alone, slow shared; core 1 steady.
        for now in range(0, 301, 10):
            sched.on_complete(request(now % 2, 0), now)
            sched.select([request(0, 0)], now=now, controller=controller)
        sched.select([request(0, 0)], now=320, controller=controller)
        assert all(s >= 1.0 for s in sched.slowdowns)

    def test_interval_too_short_rejected(self):
        with pytest.raises(ValueError):
            MiseScheduler(4, epoch=100, interval=300)


class TestMemGuard:
    def test_within_budget_prioritised(self):
        controller = FakeController()
        sched = MemGuardScheduler(2, period=1000, budgets=[1, 1])
        queue = [request(0, 0, arrival=0), request(1, 1 << 20, arrival=1)]
        first = sched.select(queue, 0, controller)
        queue.remove(first)
        # First core used its budget; over-budget core now loses to the
        # in-budget one regardless of age.
        queue.append(request(first.core_id, 128, arrival=2))
        second = sched.select(queue, 1, controller)
        assert second.core_id != first.core_id

    def test_best_effort_when_all_over_budget(self):
        controller = FakeController()
        sched = MemGuardScheduler(1, period=1000, budgets=[1])
        sched.select([request(0, 0)], 0, controller)
        follow_up = sched.select([request(0, 64)], 1, controller)
        assert follow_up is not None  # reclaimed as best effort

    def test_budget_resets_each_period(self):
        controller = FakeController()
        sched = MemGuardScheduler(1, period=100, budgets=[1])
        sched.select([request(0, 0)], 0, controller)
        assert sched.used_this_period() == [1]
        sched.select([request(0, 64)], 150, controller)
        assert sched.used_this_period() == [1]  # fresh period count

    def test_auto_budget_positive(self):
        controller = FakeController()
        sched = MemGuardScheduler(4, period=10_000)
        budgets = sched.budgets(controller)
        assert len(budgets) == 4
        assert all(b >= 1 for b in budgets)


class TestFstIntegration:
    def test_controller_installs_limiters(self):
        traces = [trace_for("gcc"), trace_for("libquantum", seed=2)]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           scheduler=FrFcfsScheduler(2))
        controller = FstController(system, epoch=5_000)
        assert len(controller.limiters) == 2
        system.run(30_000)
        assert all(est >= 1.0 for est in controller.slowdown_estimates)

    def test_invalid_parameters_rejected(self):
        traces = [trace_for("gcc")]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG)
        with pytest.raises(ValueError):
            FstController(system, epoch=0)
        system2 = SimSystem(traces, config=SCALED_MULTI_CONFIG)
        with pytest.raises(ValueError):
            FstController(system2, unfairness_threshold=0.9)

    def test_throttle_reacts_to_unfairness(self):
        traces = [trace_for("sjeng"), trace_for("libquantum", seed=2),
                  trace_for("mcf", seed=3)]
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           scheduler=FrFcfsScheduler(3))
        controller = FstController(system, epoch=5_000,
                                   unfairness_threshold=1.01)
        system.run(60_000)
        assert controller.throttle_events > 0
