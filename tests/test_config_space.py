"""Unit tests for configuration-space constraints and static baselines."""

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.core.config_space import (bandwidth_for_interval,
                                     interval_for_bandwidth,
                                     matches_static, repair_to_constraints,
                                     static_config_for_bandwidth,
                                     static_configs)


class TestConversions:
    def test_interval_for_one_gbps(self):
        # 1 GB/s at 2.4 GHz, 64B lines: 2.4e9 / (1e9/64) = 153.6 cycles
        assert interval_for_bandwidth(1e9) == pytest.approx(153.6)

    def test_roundtrip(self):
        interval = interval_for_bandwidth(3.2e9)
        assert bandwidth_for_interval(interval) == pytest.approx(3.2e9)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            interval_for_bandwidth(0)
        with pytest.raises(ValueError):
            bandwidth_for_interval(-1)


class TestMatchesStatic:
    def test_exact_match(self):
        config = BinConfig.single_bin(4, 32)  # I_avg = 45
        assert matches_static(config, static_interval=45.0,
                              total_credits=32)

    def test_interval_mismatch(self):
        config = BinConfig.single_bin(0, 32)  # I_avg = 5
        assert not matches_static(config, static_interval=45.0,
                                  total_credits=32)

    def test_credit_mismatch(self):
        config = BinConfig.single_bin(4, 8)
        assert not matches_static(config, static_interval=45.0,
                                  total_credits=32)

    def test_empty_config_never_matches(self):
        config = BinConfig.from_credits([0] * 10)
        assert not matches_static(config, static_interval=45.0,
                                  total_credits=0)


class TestRepair:
    def test_repair_hits_total_credits_exactly(self):
        spec = BinSpec()
        config = repair_to_constraints([5] * 10, spec,
                                       static_interval=45.0,
                                       total_credits=32)
        assert config.total_credits == 32

    def test_repair_brings_interval_close(self):
        spec = BinSpec()
        config = repair_to_constraints([50, 0, 0, 0, 0, 0, 0, 0, 0, 0],
                                       spec, static_interval=65.0,
                                       total_credits=24)
        assert abs(config.average_interval() - 65.0) \
            <= spec.interval_length

    def test_repair_of_zero_vector(self):
        spec = BinSpec()
        config = repair_to_constraints([0] * 10, spec,
                                       static_interval=45.0,
                                       total_credits=16)
        assert config.total_credits == 16

    def test_repaired_config_satisfies_matches_static(self):
        spec = BinSpec()
        for raw in ([9, 1, 0, 0, 3, 0, 0, 2, 0, 0],
                    [0, 0, 0, 0, 0, 0, 0, 0, 0, 40],
                    [7] * 10):
            config = repair_to_constraints(raw, spec,
                                           static_interval=55.0,
                                           total_credits=20)
            assert matches_static(config, static_interval=55.0,
                                  total_credits=20,
                                  interval_tolerance=0.15)

    def test_repair_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            repair_to_constraints([1, 2, 3], BinSpec(),
                                  static_interval=45.0, total_credits=8)


class TestStaticConfigs:
    def test_all_single_bin(self):
        for config in static_configs(BinSpec(), max_credits=16):
            populated = [c for c in config.credits if c > 0]
            assert len(populated) == 1

    def test_ladder_covers_all_bins(self):
        spec = BinSpec()
        bins_seen = {tuple(config.credits).index(config.total_credits)
                     for config in static_configs(spec, max_credits=16)}
        assert bins_seen == set(range(spec.num_bins))

    def test_ladder_includes_max(self):
        configs = list(static_configs(BinSpec(), max_credits=12))
        assert any(config.total_credits == 12 for config in configs)

    def test_static_config_for_bandwidth_picks_nearest_bin(self):
        spec = BinSpec()
        # ~45-cycle interval -> bin 4
        config = static_config_for_bandwidth(
            spec, bandwidth_for_interval(45.0))
        assert config.credits[4] > 0
