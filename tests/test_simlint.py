"""Tests for the simlint static analyzer (repro.analysis).

Each fixture under ``tests/analysis_fixtures/`` carries exactly one known
violation (its line tagged ``# VIOLATION``) plus a pragma-suppressed copy
of the same pattern, so these tests pin rule id, location *and* the
suppression syntax for every rule.
"""

import json
import os

import pytest

from repro.analysis import Baseline, Linter, all_rules, lint_paths
from repro.analysis.cli import main
from repro.analysis.findings import Severity

FIXTURES = os.path.join(os.path.dirname(__file__), "analysis_fixtures")

#: rule id -> fixture path (relative to the fixture root)
FIXTURE_FILES = {
    "SIM001": "sim/sim001_unseeded_random.py",
    "SIM002": "sim/sim002_wall_clock.py",
    "SIM003": "sim/sim003_float_cycles.py",
    "SIM004": "sim/sim004_unsorted_iteration.py",
    "SIM005": "sim/sim005_mutable_default.py",
    "SIM006": "sim/sim006_lambda_capture.py",
    "SIM007": "dram/sim007_inline_timing.py",
    "SIM008": "sim/sim008_swallowed_exception.py",
}


def fixture_path(rule_id):
    return os.path.join(FIXTURES, *FIXTURE_FILES[rule_id].split("/"))


def violation_line(path):
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            if "# VIOLATION" in line:
                return lineno
    raise AssertionError(f"{path} has no # VIOLATION marker")


#: whole-program (simflow) rule ids; fixtures live under
#: analysis_fixtures/flow/ and are exercised by test_simflow.py
FLOW_RULES = ("SIM009", "SIM010", "SIM011", "SIM012", "SIM013", "SIM014")


class TestRuleSet:
    def test_all_rules_registered(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == sorted(list(FIXTURE_FILES) + list(FLOW_RULES))

    def test_rules_carry_metadata(self):
        for rule in all_rules():
            assert rule.title
            assert rule.fix_hint
            assert rule.severity in (Severity.ERROR, Severity.WARNING)


class TestFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FILES))
    def test_fixture_reports_rule_and_line(self, rule_id):
        path = fixture_path(rule_id)
        findings = lint_paths([path])
        assert [f.rule for f in findings] == [rule_id], \
            f"expected exactly one {rule_id} finding, got {findings}"
        finding = findings[0]
        assert finding.line == violation_line(path)
        assert finding.fix_hint
        assert finding.snippet

    @pytest.mark.parametrize("rule_id", sorted(FIXTURE_FILES))
    def test_pragma_suppresses_rule(self, rule_id):
        # Every fixture contains a suppressed duplicate of its violation;
        # stripping the pragmas must surface at least one extra finding.
        path = fixture_path(rule_id)
        with open(path) as handle:
            source = handle.read()
        stripped = source.replace(f"# simlint: disable={rule_id}", "")
        linter = Linter(select=[rule_id])
        without_pragma = linter.lint_source(stripped, path=path)
        with_pragma = linter.lint_source(source, path=path)
        assert len(without_pragma) > len(with_pragma)

    def test_blanket_pragma_suppresses_all_rules(self):
        source = "import random\nx = random.Random()  # simlint: disable\n"
        findings = Linter().lint_source(source, path="sim/example.py")
        assert findings == []


class TestScoping:
    def test_sim001_only_fires_in_simulator_dirs(self):
        source = "import random\nvalue = random.random()\n"
        scoped = Linter(select=["SIM001"])
        assert scoped.lint_source(source, path="src/repro/sim/x.py")
        assert not scoped.lint_source(source,
                                      path="src/repro/experiments/x.py")

    def test_sim002_exempts_experiments_and_benchmarks(self):
        source = "import time\nstarted = time.time()\n"
        scoped = Linter(select=["SIM002"])
        assert scoped.lint_source(source, path="src/repro/metrics/x.py")
        assert not scoped.lint_source(source,
                                      path="src/repro/experiments/x.py")
        assert not scoped.lint_source(source, path="benchmarks/bench_x.py")

    def test_sim007_exempts_the_timing_module(self):
        source = "def f(t_ns):\n    return t_ns * 3\n"
        scoped = Linter(select=["SIM007"])
        assert scoped.lint_source(source, path="src/repro/dram/other.py")
        assert not scoped.lint_source(source,
                                      path="src/repro/dram/timing.py")


class TestRuleDetails:
    def test_sim001_seeded_random_is_clean(self):
        source = "import random\nrng = random.Random(42)\n"
        assert not Linter(select=["SIM001"]).lint_source(
            source, path="sim/x.py")

    def test_sim003_flags_keyword_argument(self):
        source = "def f(e, cb):\n    e.schedule(when=float(3), callback=cb)\n"
        findings = Linter(select=["SIM003"]).lint_source(source,
                                                         path="sim/x.py")
        assert [f.rule for f in findings] == ["SIM003"]

    def test_sim003_allows_floor_division(self):
        source = "def f(e, cb, p):\n    e.schedule_in(p // 2, cb)\n"
        assert not Linter(select=["SIM003"]).lint_source(source,
                                                         path="sim/x.py")

    def test_sim004_ignores_order_insensitive_loops(self):
        source = ("def f(self, d):\n"
                  "    total = 0\n"
                  "    for v in d.values():\n"
                  "        total += v\n"
                  "    return total\n")
        assert not Linter(select=["SIM004"]).lint_source(source,
                                                         path="sim/x.py")

    def test_sim006_default_bound_lambda_is_clean(self):
        source = ("def f(engine, items, done):\n"
                  "    for item in items:\n"
                  "        engine.schedule(1, lambda i=item: done(i))\n")
        assert not Linter(select=["SIM006"]).lint_source(source,
                                                         path="sim/x.py")

    def test_sim006_flags_while_loop_rebinding(self):
        source = ("def f(engine, queue, done):\n"
                  "    while queue:\n"
                  "        item = queue.pop()\n"
                  "        engine.schedule(1, lambda: done(item))\n")
        findings = Linter(select=["SIM006"]).lint_source(source,
                                                         path="sim/x.py")
        assert [f.rule for f in findings] == ["SIM006"]

    def test_sim008_keeps_handlers_that_do_work(self):
        source = ("def f(c, log):\n"
                  "    try:\n"
                  "        c.tick()\n"
                  "    except Exception:\n"
                  "        log.append('tick failed')\n")
        assert not Linter(select=["SIM008"]).lint_source(source,
                                                         path="sim/x.py")

    def test_syntax_error_becomes_sim000(self):
        findings = Linter().lint_source("def broken(:\n", path="sim/x.py")
        assert [f.rule for f in findings] == ["SIM000"]
        assert findings[0].severity is Severity.ERROR


class TestRepoIsClean:
    def test_src_has_no_findings(self):
        """The shipped baseline is empty: src/ must lint clean."""
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        findings = lint_paths([os.path.join(root, "src")])
        assert findings == [], "\n".join(f.render_text() for f in findings)


class TestBaseline:
    def test_round_trip_and_split(self, tmp_path):
        path = fixture_path("SIM005")
        findings = lint_paths([path])
        baseline = Baseline.from_findings(findings)
        target = tmp_path / "baseline.json"
        baseline.save(str(target))
        loaded = Baseline.load(str(target))
        new, old = loaded.split(findings)
        assert new == [] and len(old) == len(findings)

    def test_line_drift_does_not_unbaseline(self):
        source = "def f(x, log=[]):\n    return log\n"
        linter = Linter(select=["SIM005"])
        baseline = Baseline.from_findings(
            linter.lint_source(source, path="x.py"))
        shifted = "# a new comment line\n" + source
        new, old = baseline.split(linter.lint_source(shifted, path="x.py"))
        assert new == [] and len(old) == 1

    def test_new_findings_are_not_masked(self):
        source = "def f(x, log=[]):\n    return log\n"
        linter = Linter(select=["SIM005"])
        baseline = Baseline.from_findings(
            linter.lint_source(source, path="x.py"))
        grown = source + "def g(x, seen={}):\n    return seen\n"
        new, old = baseline.split(linter.lint_source(grown, path="x.py"))
        assert len(new) == 1 and len(old) == 1


class TestCli:
    def run(self, *argv):
        import io
        out, err = io.StringIO(), io.StringIO()
        code = main(list(argv), stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def test_clean_tree_exits_zero(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        code, out, _ = self.run(os.path.join(root, "src"), "--no-baseline")
        assert code == 0
        assert "clean" in out

    def test_fixtures_exit_nonzero_with_location(self):
        path = fixture_path("SIM001")
        code, out, _ = self.run(path, "--no-baseline")
        assert code == 1
        assert "SIM001" in out
        assert f":{violation_line(path)}:" in out

    def test_json_format(self):
        code, out, _ = self.run(fixture_path("SIM003"), "--no-baseline",
                                "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["counts"]["error"] == 1
        assert payload["new"][0]["rule"] == "SIM003"

    def test_baseline_workflow(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        path = fixture_path("SIM008")
        code, _, _ = self.run(path, "--baseline", str(baseline),
                              "--write-baseline")
        assert code == 0
        code, out, _ = self.run(path, "--baseline", str(baseline))
        assert code == 0
        assert "baselined" in out

    def test_unknown_rule_is_usage_error(self):
        code, _, err = self.run("src", "--select", "SIM999")
        assert code == 2
        assert "SIM999" in err

    def test_missing_path_is_usage_error(self):
        code, _, err = self.run("no/such/dir")
        assert code == 2

    def test_list_rules(self):
        code, out, _ = self.run("--list-rules")
        assert code == 0
        for rule_id in FIXTURE_FILES:
            assert rule_id in out
