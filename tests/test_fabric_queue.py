"""The claim/lease/steal protocol and queue bookkeeping."""

import json

import pytest

from repro.fabric.manifest import parse_manifest
from repro.fabric.queue import (CampaignQueue, QueueError, decode_spec,
                                encode_spec, find_campaign, list_campaigns)
from repro.fabric.storage import RealStorage
from repro.runner.jobspec import JobSpec
from tests._fabric_jobs import ToyEvaluator


def make_queue(tmp_path, values=(1, 2, 3), name="q") -> CampaignQueue:
    manifest = parse_manifest({
        "name": name, "fn": "tests._fabric_jobs:add_one",
        "grid": {"x": list(values)}})
    return CampaignQueue.submit(tmp_path / "root", manifest)


class TestCodec:
    def test_json_round_trip(self):
        spec = JobSpec.create("j", "tests._fabric_jobs:add_one", 5,
                              seed=3, scale="smoke")
        index, decoded = decode_spec(encode_spec(spec, 7))
        assert index == 7
        assert decoded == spec
        assert decoded.spec_hash() == spec.spec_hash()

    def test_pickle_fallback_for_objects(self):
        evaluator = ToyEvaluator()
        spec = JobSpec.create(
            "j", "repro.experiments.common:_score_genome", evaluator, [])
        document = encode_spec(spec, 0)
        assert document["args"]["format"] == "pickle"
        _, decoded = decode_spec(document)
        assert decoded.args[0] == evaluator

    def test_damaged_entry_detected(self):
        spec = JobSpec.create("j", "tests._fabric_jobs:add_one", 5)
        document = encode_spec(spec, 0)
        document["args"] = {"format": "json", "data": "[6]"}
        with pytest.raises(QueueError, match="damaged"):
            decode_spec(document)


class TestSubmission:
    def test_submit_is_idempotent(self, tmp_path):
        first = make_queue(tmp_path)
        job = first.claim_next("w")
        first.complete(job, {"status": "done", "job_index": job.index})
        again = make_queue(tmp_path)
        assert again.campaign_id == first.campaign_id
        assert again.has_result(job.index)  # prior work survived

    def test_submit_specs_batch(self, tmp_path):
        specs = [JobSpec.create(f"b[{i}]", "tests._fabric_jobs:add_one", i)
                 for i in range(3)]
        queue = CampaignQueue.submit_specs(tmp_path, "batch", specs)
        assert queue.job_indices() == [0, 1, 2]
        assert queue.header()["name"] == "batch"
        dedup = CampaignQueue.submit_specs(tmp_path, "batch", specs)
        assert dedup.campaign_id == queue.campaign_id

    def test_empty_batch_rejected(self, tmp_path):
        with pytest.raises(QueueError):
            CampaignQueue.submit_specs(tmp_path, "empty", [])

    def test_header_missing_raises(self, tmp_path):
        queue = CampaignQueue(tmp_path, "nonexistent")
        assert not queue.is_submitted()
        with pytest.raises(QueueError):
            queue.header()


class TestClaims:
    def test_claims_in_index_order_exactly_once(self, tmp_path):
        queue = make_queue(tmp_path)
        first = queue.claim_next("a")
        second = queue.claim_next("b")
        third = queue.claim_next("c")
        assert [first.index, second.index, third.index] == [0, 1, 2]
        assert queue.claim_next("d") is None  # all leases live

    def test_live_lease_not_stolen(self, tmp_path):
        queue = make_queue(tmp_path)
        held = queue.claim_next("a", lease_seconds=3600)
        other = queue.claim_next("b", lease_seconds=3600)
        assert held.index != other.index

    def test_expired_lease_stolen_with_attempt_bump(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        victim = queue.claim_next("dead", lease_seconds=0.0)
        assert victim.attempt == 1
        stolen = queue.claim_next("thief", lease_seconds=3600)
        assert stolen is not None
        assert stolen.index == victim.index
        assert stolen.attempt == 2

    def test_renew_extends_lease(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("a", lease_seconds=0.0)
        queue.renew(job, lease_seconds=3600)
        assert queue.claim_next("thief") is None

    def test_release_reopens_job(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("a", lease_seconds=3600)
        queue.release(job.index)
        assert queue.claim_next("b").index == job.index

    def test_complete_records_result_and_releases(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("a")
        queue.complete(job, {"status": "done", "job_index": job.index,
                             "metrics": {"value": 2.0}})
        assert queue.is_drained()
        assert queue.load_result(job.index)["metrics"] == {"value": 2.0}
        assert queue.claim_next("b") is None  # done jobs never re-claimed

    def test_completed_jobs_skipped_even_with_stale_claim(self, tmp_path):
        queue = make_queue(tmp_path, values=(1, 2))
        job = queue.claim_next("a", lease_seconds=0.0)
        # The holder completes at the wire (claim file still present
        # and expired) -- a would-be thief must see the result and
        # move on to the next job, not double-claim this one.
        queue.results_dir.joinpath(f"{job.index:06d}.json").write_text(
            json.dumps({"status": "done", "job_index": job.index}),
            encoding="utf-8")
        other = queue.claim_next("thief")
        assert other.index != job.index


class _HookedStorage(RealStorage):
    """Deterministic race interposer: runs a callback exactly once,
    immediately before the named storage operation -- simulating another
    worker winning the wire inside this worker's race window."""

    def __init__(self, operation, hook):
        self._operation = operation
        self._hook = hook

    def _fire(self, name):
        if self._hook is not None and name == self._operation:
            hook, self._hook = self._hook, None
            hook()

    def rename(self, source, destination):
        self._fire("rename")
        super().rename(source, destination)

    def create_exclusive(self, path, text):
        self._fire("create_exclusive")
        super().create_exclusive(path, text)


class TestLeaseEdges:
    def test_renew_after_release_does_not_resurrect(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("a", lease_seconds=3600)
        queue.release(job.index)
        # Renewing a released claim must refuse (a rewrite would wedge
        # the job behind a ghost lease until it expired again).
        assert queue.renew(job, lease_seconds=3600) is False
        assert queue.claim_next("b").index == job.index

    def test_renew_after_steal_is_refused(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        victim = queue.claim_next("victim", lease_seconds=0.0)
        thief = queue.claim_next("thief", lease_seconds=3600)
        assert thief.index == victim.index
        # The zombie's renewal must not clobber the thief's live lease.
        assert queue.renew(victim, lease_seconds=3600) is False
        assert queue.claim_next("third") is None

    def test_double_steal_converges_on_one_result(self, tmp_path):
        # Worst-case steal overlap: thief B completes an entire steal
        # inside thief A's window (between A's expiry check and A's
        # rename).  The protocol tolerates the resulting double-run --
        # deterministic jobs write byte-identical results and complete()
        # atomically replaces -- so the campaign still converges on one
        # terminal result with no claim left behind.
        queue_b = make_queue(tmp_path, values=(1,))
        victim = queue_b.claim_next("victim", lease_seconds=0.0)
        stolen = {}

        def thief_b_wins():
            stolen["job"] = queue_b.claim_next("thief-b",
                                               lease_seconds=3600)

        queue_a = CampaignQueue(tmp_path / "root", queue_b.campaign_id,
                                storage=_HookedStorage("rename",
                                                       thief_b_wins))
        job_a = queue_a.claim_next("thief-a", lease_seconds=3600)
        job_b = stolen["job"]
        assert job_b is not None and job_b.index == victim.index
        assert job_b.attempt == 2
        record = {"status": "done", "job_index": victim.index,
                  "metrics": {"value": 2.0}}
        queue_b.complete(job_b, dict(record))
        if job_a is not None:  # A re-stole B's claim: the double-run
            assert job_a.index == victim.index
            assert job_a.attempt == 3
            queue_a.complete(job_a, dict(record))
        assert queue_b.is_drained()
        assert queue_b.load_result(victim.index)["metrics"] \
            == {"value": 2.0}
        assert queue_b.claim_next("fourth") is None

    def test_complete_beats_steal_at_the_wire(self, tmp_path):
        # The original holder finishes between the thief's expiry check
        # and the thief's claim creation: the thief must notice the
        # fresh result, back off, and leave no claim behind.
        queue_holder = make_queue(tmp_path, values=(1,))
        victim = queue_holder.claim_next("holder", lease_seconds=0.0)

        def holder_completes():
            queue_holder.complete(victim, {
                "status": "done", "job_index": victim.index,
                "metrics": {"value": 2.0}})

        queue_thief = CampaignQueue(
            tmp_path / "root", queue_holder.campaign_id,
            storage=_HookedStorage("create_exclusive", holder_completes))
        assert queue_thief.claim_next("thief", lease_seconds=3600) is None
        assert queue_holder.is_drained()
        assert queue_holder.load_result(victim.index)["metrics"] \
            == {"value": 2.0}
        assert queue_holder.snapshot()["running"] == 0  # no claim debris


class TestStatus:
    def test_snapshot_counts(self, tmp_path):
        queue = make_queue(tmp_path, values=(1, 2, 3, 4))
        done_job = queue.claim_next("a")
        queue.complete(done_job, {"status": "done",
                                  "job_index": done_job.index,
                                  "duration": 2.0})
        queue.claim_next("a", lease_seconds=3600)   # running
        queue.claim_next("dead", lease_seconds=0.0)  # stale
        snapshot = queue.snapshot()
        assert snapshot["done"] == 1
        assert snapshot["running"] == 1
        assert snapshot["stale"] == 1
        assert snapshot["pending"] == 1
        assert snapshot["workers"] == {"a": 1}
        assert snapshot["mean_duration"] == 2.0

    def test_eta_guards(self, tmp_path):
        queue = make_queue(tmp_path, values=(1, 2))
        # nothing completed yet -> unknown, not a division by zero
        assert CampaignQueue.eta_seconds(queue.snapshot()) is None
        job = queue.claim_next("a")
        queue.complete(job, {"status": "done", "job_index": job.index,
                             "duration": 0.0})
        # zero observed rate -> still unknown, not eta 0
        assert CampaignQueue.eta_seconds(queue.snapshot()) is None
        job = queue.claim_next("a")
        queue.complete(job, {"status": "done", "job_index": job.index,
                             "duration": 1.0})
        # everything terminal -> 0.0
        assert CampaignQueue.eta_seconds(queue.snapshot()) == 0.0

    def test_eta_scales_by_live_workers(self, tmp_path):
        queue = make_queue(tmp_path, values=(1, 2, 3, 4))
        job = queue.claim_next("a")
        queue.complete(job, {"status": "done", "job_index": job.index,
                             "duration": 4.0})
        solo = CampaignQueue.eta_seconds(queue.snapshot())
        assert solo == pytest.approx(12.0)  # 3 outstanding x 4s / 1


class TestDiscovery:
    def test_find_by_id_prefix_and_name(self, tmp_path):
        queue = make_queue(tmp_path, name="alpha")
        root = tmp_path / "root"
        assert find_campaign(root, queue.campaign_id).campaign_id \
            == queue.campaign_id
        assert find_campaign(root, queue.campaign_id[:6]).campaign_id \
            == queue.campaign_id
        assert find_campaign(root, "alpha").campaign_id \
            == queue.campaign_id
        assert find_campaign(root, None).campaign_id == queue.campaign_id

    def test_ambiguity_and_misses_raise(self, tmp_path):
        make_queue(tmp_path, values=(1,), name="one")
        make_queue(tmp_path, values=(2,), name="two")
        root = tmp_path / "root"
        assert len(list_campaigns(root)) == 2
        with pytest.raises(QueueError, match="pass --campaign"):
            find_campaign(root, None)
        with pytest.raises(QueueError, match="no campaign matching"):
            find_campaign(root, "zzz")
        with pytest.raises(QueueError, match="no submitted campaigns"):
            find_campaign(tmp_path / "elsewhere", None)
