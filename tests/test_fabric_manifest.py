"""Manifest parsing, validation, and deterministic expansion."""

import json

import pytest

from repro.fabric.manifest import (Manifest, ManifestError, figure_manifest,
                                   parse_manifest)

BASE = {
    "name": "sweep",
    "fn": "tests._fabric_jobs:add_one",
    "grid": {"x": [1, 2, 3]},
}


class TestParsing:
    def test_minimal_manifest(self):
        manifest = parse_manifest(dict(BASE))
        assert manifest.name == "sweep"
        assert manifest.num_jobs() == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ManifestError, match="unknown manifest key"):
            parse_manifest(dict(BASE, gird={"x": [1]}))

    def test_name_required_and_clean(self):
        with pytest.raises(ManifestError, match="name"):
            parse_manifest({"fn": "a:b", "grid": {"x": [1]}})
        with pytest.raises(ManifestError, match="must not contain"):
            parse_manifest(dict(BASE, name="bad name"))

    def test_fn_needs_module_colon_qualname(self):
        with pytest.raises(ManifestError, match="module:qualname"):
            parse_manifest(dict(BASE, fn="no_colon"))

    def test_grid_axis_must_be_nonempty_list(self):
        with pytest.raises(ManifestError, match="non-empty"):
            parse_manifest(dict(BASE, grid={"x": []}))

    def test_zip_axes_must_share_length(self):
        with pytest.raises(ManifestError, match="share one length"):
            parse_manifest({"name": "z", "fn": "a:b",
                            "zip": {"x": [1, 2], "y": [1]}})

    def test_overlapping_parameters_rejected(self):
        with pytest.raises(ManifestError, match="more than one"):
            parse_manifest(dict(BASE, fixed={"x": 9}))

    def test_policy_validated(self):
        with pytest.raises(ManifestError, match="policy.timeout"):
            parse_manifest(dict(BASE, policy={"timeout": -1}))
        with pytest.raises(ManifestError, match="retries"):
            parse_manifest(dict(BASE, policy={"retries": -1}))
        with pytest.raises(ManifestError, match="unknown policy"):
            parse_manifest(dict(BASE, policy={"retry": 1}))

    def test_parameter_names_must_be_identifiers(self):
        with pytest.raises(ManifestError, match="keyword argument"):
            parse_manifest({"name": "b", "fn": "a:b",
                            "grid": {"not-a-kwarg": [1]}})

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(BASE), encoding="utf-8")
        assert parse_manifest(path).campaign_id() \
            == parse_manifest(dict(BASE)).campaign_id()

    def test_yaml_file_round_trip(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "sweep.yaml"
        path.write_text(yaml.safe_dump(BASE), encoding="utf-8")
        assert parse_manifest(path).campaign_id() \
            == parse_manifest(dict(BASE)).campaign_id()


class TestExpansion:
    def test_expansion_is_deterministic(self):
        first = parse_manifest(dict(BASE)).expand()
        second = parse_manifest(dict(BASE)).expand()
        assert [s.spec_hash() for s in first] \
            == [s.spec_hash() for s in second]
        assert [s.job_id for s in first] == [s.job_id for s in second]

    def test_campaign_id_tracks_declared_work(self):
        base_id = parse_manifest(dict(BASE)).campaign_id()
        changed = parse_manifest(dict(BASE, grid={"x": [1, 2, 4]}))
        assert changed.campaign_id() != base_id
        # key order in the document must not matter
        reordered = parse_manifest(
            {"grid": {"x": [1, 2, 3]}, "fn": BASE["fn"],
             "name": BASE["name"]})
        assert reordered.campaign_id() == base_id

    def test_grid_odometer_order_sorted_keys(self):
        manifest = parse_manifest({
            "name": "g", "fn": "a:b",
            "grid": {"b": [10, 20], "a": [1, 2]}})
        points = [dict(spec.kwargs) for spec in manifest.expand()]
        assert points == [{"a": 1, "b": 10}, {"a": 1, "b": 20},
                          {"a": 2, "b": 10}, {"a": 2, "b": 20}]

    def test_zip_rows_advance_in_lockstep(self):
        manifest = parse_manifest({
            "name": "z", "fn": "a:b",
            "grid": {"mode": ["fast", "slow"]},
            "zip": {"x": [1, 2], "y": [10, 20]}})
        points = [dict(spec.kwargs) for spec in manifest.expand()]
        assert points == [
            {"mode": "fast", "x": 1, "y": 10},
            {"mode": "fast", "x": 2, "y": 20},
            {"mode": "slow", "x": 1, "y": 10},
            {"mode": "slow", "x": 2, "y": 20}]
        assert manifest.num_jobs() == len(points)

    def test_seed_and_scale_promoted_to_spec_fields(self):
        manifest = parse_manifest({
            "name": "s", "fn": "a:b",
            "fixed": {"scale": "smoke"},
            "grid": {"seed": [1, 2]}})
        specs = manifest.expand()
        assert [spec.seed for spec in specs] == [1, 2]
        assert all(spec.scale == "smoke" for spec in specs)
        # and they stay in kwargs for the call itself
        assert all(dict(spec.kwargs)["scale"] == "smoke"
                   for spec in specs)

    def test_job_ids_zero_padded_and_stable(self):
        specs = parse_manifest(dict(BASE)).expand()
        assert [spec.job_id for spec in specs] \
            == ["sweep:00000", "sweep:00001", "sweep:00002"]

    def test_policy_applied_to_every_spec(self):
        manifest = parse_manifest(
            dict(BASE, policy={"timeout": 30, "retries": 5}))
        for spec in manifest.expand():
            assert spec.timeout == 30.0
            assert spec.retries == 5


class TestFigureManifest:
    def test_builds_experiment_grid(self):
        manifest = figure_manifest(["fig12", "fig02"], scale="smoke",
                                   seeds=[1, 2])
        assert isinstance(manifest, Manifest)
        assert manifest.fn == "repro.experiments:run_experiment"
        assert manifest.num_jobs() == 4
        names = {dict(spec.kwargs)["name"] for spec in manifest.expand()}
        assert names == {"fig02", "fig12"}

    def test_empty_selection_rejected(self):
        with pytest.raises(ManifestError):
            figure_manifest([])
