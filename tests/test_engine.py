"""Unit tests for the discrete-event engine."""

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(30, lambda: log.append("c"))
        engine.schedule(10, lambda: log.append("a"))
        engine.schedule(20, lambda: log.append("b"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_same_cycle_fifo_order(self):
        engine = Engine()
        log = []
        for name in "abcd":
            engine.schedule(5, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c", "d"]

    def test_now_tracks_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]

    def test_past_scheduling_clamped_to_now(self):
        engine = Engine()
        seen = []

        def late():
            engine.schedule(engine.now - 100, lambda: seen.append(engine.now))

        engine.schedule(50, late)
        engine.run()
        assert seen == [50]

    def test_schedule_in_relative(self):
        engine = Engine()
        seen = []
        engine.schedule(10, lambda: engine.schedule_in(
            5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15]


class TestDeterminismContract:
    """Regression pins for the ordering guarantees SIM006 and the runtime
    contracts (repro.analysis.contracts) rely on: same-cycle events run in
    FIFO scheduling order, and past scheduling clamps to ``now``."""

    def test_fifo_survives_nested_same_cycle_scheduling(self):
        # Children scheduled *during* cycle 5 run after the events that
        # were already queued for cycle 5, still in scheduling order.
        engine = Engine()
        log = []

        def first():
            log.append("first")
            engine.schedule(5, lambda: log.append("child-a"))
            engine.schedule(5, lambda: log.append("child-b"))

        engine.schedule(5, first)
        engine.schedule(5, lambda: log.append("second"))
        engine.run()
        assert log == ["first", "second", "child-a", "child-b"]

    def test_clamped_past_events_keep_fifo_order(self):
        # Events scheduled in the past clamp to now and slot in FIFO order
        # behind everything already queued for the current cycle.
        engine = Engine()
        log = []

        def late():
            log.append("late")
            engine.schedule(engine.now - 30, lambda: log.append("clamp-a"))
            engine.schedule(0, lambda: log.append("clamp-b"))

        engine.schedule(50, late)
        engine.schedule(50, lambda: log.append("peer"))
        engine.run()
        assert log == ["late", "peer", "clamp-a", "clamp-b"]
        assert engine.now == 50

    def test_fifo_order_preserved_across_horizon_resume(self):
        engine = Engine()
        log = []
        for name in ("a", "b"):
            engine.schedule(10, lambda n=name: log.append(n))
        engine.run(until=10)
        assert log == []
        for name in ("c", "d"):
            engine.schedule(10, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c", "d"]

    def test_interleaved_components_serialize_by_schedule_call(self):
        # Two "components" interleaving schedule calls for the same cycle
        # observe one global FIFO order, not per-component order.
        engine = Engine()
        log = []
        for index in range(3):
            engine.schedule(7, lambda i=index: log.append(("alpha", i)))
            engine.schedule(7, lambda i=index: log.append(("beta", i)))
        engine.run()
        assert log == [("alpha", 0), ("beta", 0), ("alpha", 1),
                       ("beta", 1), ("alpha", 2), ("beta", 2)]


class TestHorizon:
    def test_until_is_exclusive(self):
        engine = Engine()
        log = []
        engine.schedule(10, lambda: log.append(10))
        engine.run(until=10)
        assert log == []
        assert engine.now == 10

    def test_resume_does_not_rerun_events(self):
        engine = Engine()
        log = []
        engine.schedule(10, lambda: log.append(10))
        engine.run(until=10)
        engine.run(until=20)
        assert log == [10]

    def test_time_advances_to_horizon_when_idle(self):
        engine = Engine()
        engine.run(until=500)
        assert engine.now == 500

    def test_events_spawned_inside_horizon_run(self):
        engine = Engine()
        log = []
        engine.schedule(5, lambda: engine.schedule(
            6, lambda: log.append("child")))
        engine.run(until=10)
        assert log == ["child"]


class TestControl:
    def test_stop_halts_processing(self):
        engine = Engine()
        log = []
        engine.schedule(1, lambda: (log.append(1), engine.stop()))
        engine.schedule(2, lambda: log.append(2))
        engine.run()
        assert log == [(1, None)] or log == [1]
        assert engine.pending_events == 1

    def test_max_events(self):
        engine = Engine()
        log = []
        for i in range(5):
            engine.schedule(i, lambda i=i: log.append(i))
        engine.run(max_events=3)
        assert log == [0, 1, 2]

    def test_pending_events_counter(self):
        engine = Engine()
        engine.schedule(1, lambda: None)
        engine.schedule(2, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
