"""Unit tests for the discrete-event engine."""

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        log = []
        engine.schedule(30, lambda: log.append("c"))
        engine.schedule(10, lambda: log.append("a"))
        engine.schedule(20, lambda: log.append("b"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_same_cycle_fifo_order(self):
        engine = Engine()
        log = []
        for name in "abcd":
            engine.schedule(5, lambda n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c", "d"]

    def test_now_tracks_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]

    def test_past_scheduling_clamped_to_now(self):
        engine = Engine()
        seen = []

        def late():
            engine.schedule(engine.now - 100, lambda: seen.append(engine.now))

        engine.schedule(50, late)
        engine.run()
        assert seen == [50]

    def test_schedule_in_relative(self):
        engine = Engine()
        seen = []
        engine.schedule(10, lambda: engine.schedule_in(
            5, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [15]


class TestHorizon:
    def test_until_is_exclusive(self):
        engine = Engine()
        log = []
        engine.schedule(10, lambda: log.append(10))
        engine.run(until=10)
        assert log == []
        assert engine.now == 10

    def test_resume_does_not_rerun_events(self):
        engine = Engine()
        log = []
        engine.schedule(10, lambda: log.append(10))
        engine.run(until=10)
        engine.run(until=20)
        assert log == [10]

    def test_time_advances_to_horizon_when_idle(self):
        engine = Engine()
        engine.run(until=500)
        assert engine.now == 500

    def test_events_spawned_inside_horizon_run(self):
        engine = Engine()
        log = []
        engine.schedule(5, lambda: engine.schedule(
            6, lambda: log.append("child")))
        engine.run(until=10)
        assert log == ["child"]


class TestControl:
    def test_stop_halts_processing(self):
        engine = Engine()
        log = []
        engine.schedule(1, lambda: (log.append(1), engine.stop()))
        engine.schedule(2, lambda: log.append(2))
        engine.run()
        assert log == [(1, None)] or log == [1]
        assert engine.pending_events == 1

    def test_max_events(self):
        engine = Engine()
        log = []
        for i in range(5):
            engine.schedule(i, lambda i=i: log.append(i))
        engine.run(max_events=3)
        assert log == [0, 1, 2]

    def test_pending_events_counter(self):
        engine = Engine()
        engine.schedule(1, lambda: None)
        engine.schedule(2, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
