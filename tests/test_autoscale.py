"""Tests for schedule/rule-based auto-scaling (Section III-F)."""

import pytest

from repro.cloud.autoscale import AutoScaler, ScheduleRule, TriggerRule
from repro.core.bins import BinConfig
from repro.core.shaper import MittsShaper
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.benchmarks import trace_for


BASE = BinConfig.from_credits([4, 2, 1, 1, 1, 1, 1, 1, 1, 2])


def make_system(benchmark="mcf"):
    return SimSystem([trace_for(benchmark)], config=SCALED_MULTI_CONFIG,
                     limiters=[MittsShaper(BASE)])


class TestScheduleRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduleRule(start=10, end=10, bin_index=0, delta=1)
        with pytest.raises(ValueError):
            ScheduleRule(start=-1, end=10, bin_index=0, delta=1)

    def test_active_window(self):
        rule = ScheduleRule(start=100, end=200, bin_index=0, delta=4)
        assert not rule.active(99)
        assert rule.active(100)
        assert rule.active(199)
        assert not rule.active(200)

    def test_apply_adds_credits(self):
        rule = ScheduleRule(start=0, end=10, bin_index=0, delta=4)
        assert rule.apply(BASE).credits[0] == 8

    def test_apply_clamps(self):
        down = ScheduleRule(start=0, end=10, bin_index=0, delta=-100)
        assert down.apply(BASE).credits[0] == 0


class TestTriggerRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            TriggerRule(metric="bogus", threshold=1.0,
                        action=lambda c: c)
        with pytest.raises(ValueError):
            TriggerRule(metric="work_rate", threshold=1.0,
                        direction="sideways", action=lambda c: c)
        with pytest.raises(ValueError):
            TriggerRule(metric="work_rate", threshold=1.0)  # no action

    def test_crossed(self):
        below = TriggerRule(metric="work_rate", threshold=0.5,
                            direction="below", action=lambda c: c)
        assert below.crossed(0.4)
        assert not below.crossed(0.6)
        above = TriggerRule(metric="stall_fraction", threshold=0.5,
                            direction="above", action=lambda c: c)
        assert above.crossed(0.6)


class TestAutoScaler:
    def test_schedule_applies_and_reverts(self):
        system = make_system()
        rule = ScheduleRule(start=10_000, end=30_000, bin_index=0,
                            delta=8)
        scaler = AutoScaler(system, 0, BASE, schedules=[rule],
                            epoch=5_000)
        system.run(20_000)
        limiter = system.limiter(0)
        assert limiter.config.credits[0] == BASE.credits[0] + 8
        system.run(20_000)  # past the window: reverts to base
        assert limiter.config.credits[0] == BASE.credits[0]
        assert len(scaler.events) >= 2

    def test_trigger_fires_on_stall(self):
        system = make_system("mcf")
        fired = []
        rule = TriggerRule(metric="stall_fraction", threshold=0.0,
                           direction="above",
                           callback=lambda: fired.append(1),
                           action=lambda c: c.with_credits(
                               0, min(c.spec.max_credits,
                                      c.credits[0] + 2)))
        AutoScaler(system, 0, BASE, triggers=[rule], epoch=5_000)
        system.run(30_000)
        assert fired  # mcf always stalls a little under this config

    def test_trigger_cooldown_limits_firing(self):
        system = make_system("mcf")
        fired = []
        rule = TriggerRule(metric="stall_fraction", threshold=0.0,
                           direction="above", cooldown=3,
                           callback=lambda: fired.append(
                               system.engine.now))
        AutoScaler(system, 0, BASE, triggers=[rule], epoch=5_000)
        system.run(60_000)
        # 12 epochs, cooldown 3 -> at most every 4th epoch fires.
        assert len(fired) <= 3

    def test_parameter_validation(self):
        system = make_system()
        with pytest.raises(ValueError):
            AutoScaler(system, 0, BASE, epoch=0)
        with pytest.raises(ValueError):
            AutoScaler(system, 5, BASE)

    def test_scaler_without_rules_is_inert(self):
        system = make_system()
        scaler = AutoScaler(system, 0, BASE, epoch=5_000)
        system.run(30_000)
        assert scaler.events == []
        assert system.limiter(0).config.credits == BASE.credits
