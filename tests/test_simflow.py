"""Tests for simflow, the whole-program analysis (repro.analysis.flow).

Fixture files under ``tests/analysis_fixtures/flow/`` each seed exactly
one interprocedural violation (line tagged ``# VIOLATION``) plus a
pragma-suppressed copy, mirroring the per-file simlint fixtures.  The
fixtures are analyzed under a synthetic ``src/repro/sim/`` path so the
path-based exemptions (``tests/`` is outside any checkpoint graph) do
not hide the seeded defects.
"""

import json
import os

import pytest

from repro.analysis.baseline import Baseline, pass_for_rule
from repro.analysis.cli import main
from repro.analysis.flow import (CallGraph, Program, analyze_paths,
                                 analyze_sources)
from repro.analysis.flow.cycles import CycleTaintAnalysis
from repro.analysis.flow.effects import WALLCLOCK, EffectAnalysis
from repro.analysis.flow.pickles import (PickleReachability,
                                         jobspec_violations)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO, "tests", "analysis_fixtures", "flow")

#: rule id -> fixture file under analysis_fixtures/flow/
FLOW_FIXTURES = {
    "SIM009": "sim009_wallclock_reachable.py",
    "SIM010": "sim010_rng_reachable.py",
    "SIM011": "sim011_ambient_reachable.py",
    "SIM012": "sim012_cycle_taint.py",
    "SIM013": "sim013_checkpoint_slots.py",
    "SIM014": "sim014_jobspec_import.py",
}


def fixture_source(rule_id):
    with open(os.path.join(FIXTURES, FLOW_FIXTURES[rule_id])) as handle:
        return handle.read()


def fixture_findings(rule_id, source=None):
    source = fixture_source(rule_id) if source is None else source
    path = f"src/repro/sim/{FLOW_FIXTURES[rule_id]}"
    return analyze_sources({path: source}, select={rule_id})


def violation_line(source):
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "# VIOLATION" in line:
            return lineno
    raise AssertionError("fixture has no # VIOLATION marker")


def build(sources):
    """(program, graph) for an inline {path: source} program."""
    program = Program.from_sources(sources)
    return program, CallGraph(program)


class TestFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURES))
    def test_fixture_reports_rule_and_line(self, rule_id):
        source = fixture_source(rule_id)
        findings = fixture_findings(rule_id, source)
        assert [f.rule for f in findings] == [rule_id], \
            f"expected exactly one {rule_id}, got {findings}"
        finding = findings[0]
        assert finding.line == violation_line(source)
        assert finding.fix_hint
        assert finding.snippet

    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURES))
    def test_pragma_suppresses_rule(self, rule_id):
        source = fixture_source(rule_id)
        stripped = source.replace(f"# simlint: disable={rule_id}", "")
        with_pragma = fixture_findings(rule_id, source)
        without_pragma = fixture_findings(rule_id, stripped)
        assert len(without_pragma) > len(with_pragma)

    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURES))
    def test_witness_chain_in_message(self, rule_id):
        # Every interprocedural finding must explain *why* the line is
        # blamed: a chain, a source line, or the failing callable.
        finding = fixture_findings(rule_id)[0]
        assert ("->" in finding.message or "line" in finding.message
                or "lambda" in finding.message)


class TestCallGraph:
    def test_direct_call_edges_resolve(self):
        program, graph = build({
            "src/repro/sim/a.py": (
                "from .b import helper\n"
                "def entry():\n"
                "    return helper()\n"),
            "src/repro/sim/b.py": (
                "def helper():\n"
                "    return 1\n"),
        })
        callees = [s.callee.qualname
                   for s in graph.calls_from("repro.sim.a.entry")]
        assert callees == ["repro.sim.b.helper"]

    def test_bound_callback_resolution(self):
        program, graph = build({"src/repro/sim/c.py": (
            "class Engine:\n"
            "    def schedule(self, when, callback):\n"
            "        pass\n"
            "class Cache:\n"
            "    def __init__(self, engine: Engine):\n"
            "        self.engine = engine\n"
            "    def lookup(self):\n"
            "        pass\n"
            "    def start(self):\n"
            "        self.engine.schedule(4, self.lookup)\n")})
        scheduled = [cb.qualname
                     for cb, _site in graph.scheduled_callbacks()]
        assert scheduled == ["repro.sim.c.Cache.lookup"]

    def test_callable_instance_links_to_dunder_call(self):
        program, graph = build({"src/repro/sim/d.py": (
            "class Engine:\n"
            "    def schedule_in(self, delay, callback):\n"
            "        pass\n"
            "class Ticker:\n"
            "    def __call__(self):\n"
            "        pass\n"
            "def arm(engine: Engine):\n"
            "    engine.schedule_in(2, Ticker())\n")})
        scheduled = [cb.qualname
                     for cb, _site in graph.scheduled_callbacks()]
        assert scheduled == ["repro.sim.d.Ticker.__call__"]

    def test_attr_type_inference_resolves_method_calls(self):
        program, graph = build({"src/repro/sim/e.py": (
            "class Cache:\n"
            "    def lookup(self):\n"
            "        pass\n"
            "class System:\n"
            "    def __init__(self):\n"
            "        self.llc = Cache()\n"
            "    def step(self):\n"
            "        self.llc.lookup()\n")})
        callees = {s.callee.qualname
                   for s in graph.calls_from("repro.sim.e.System.step")}
        assert "repro.sim.e.Cache.lookup" in callees


class TestEffectPropagation:
    def test_effect_propagates_to_run_root(self):
        program, graph = build({
            "src/repro/sim/system.py": (
                "from .helpers import tick\n"
                "class SimSystem:\n"
                "    def run(self, until):\n"
                "        return tick()\n"),
            "src/repro/sim/helpers.py": (
                "import time\n"
                "def tick():\n"
                "    return time.time()\n"),
        })
        effects = EffectAnalysis(program, graph)
        violations = effects.violations()
        assert len(violations) == 1
        site, chain = violations[0]
        assert site.kind == WALLCLOCK
        assert chain == ["repro.sim.system.SimSystem.run",
                         "repro.sim.helpers.tick"]

    def test_wallclock_module_is_a_cut_point(self):
        program, graph = build({
            "src/repro/sim/system.py": (
                "from ..runner import wallclock\n"
                "class SimSystem:\n"
                "    def run(self, until):\n"
                "        return wallclock.now()\n"),
            "src/repro/runner/wallclock.py": (
                "import time\n"
                "def now():\n"
                "    return time.time()\n"),
        })
        assert EffectAnalysis(program, graph).violations() == []

    def test_experiment_callbacks_are_not_roots(self):
        findings = analyze_sources({"src/repro/experiments/run.py": (
            "import random\n"
            "class Driver:\n"
            "    def cb(self):\n"
            "        return random.random()\n"
            "    def arm(self, engine):\n"
            "        engine.schedule(1, self.cb)\n")},
            select={"SIM010"})
        assert findings == []


class TestCycleTaint:
    def test_float_return_taints_through_two_helpers(self):
        program, graph = build({"src/repro/sim/f.py": (
            "def half(x):\n"
            "    return x / 2\n"
            "def wrapped(x):\n"
            "    return half(x)\n"
            "def arm(engine, x, cb):\n"
            "    engine.schedule(wrapped(x), cb)\n")})
        violations = CycleTaintAnalysis(program, graph).violations()
        assert len(violations) == 1
        assert violations[0][0].caller.qualname == "repro.sim.f.arm"

    def test_int_conversion_launders_taint(self):
        program, graph = build({"src/repro/sim/g.py": (
            "def half(x):\n"
            "    return x / 2\n"
            "def arm(engine, x, cb):\n"
            "    engine.schedule(int(half(x)), cb)\n"
            "def arm2(engine, x, cb):\n"
            "    engine.schedule(x // 2, cb)\n")})
        assert CycleTaintAnalysis(program, graph).violations() == []

    def test_param_tainted_by_call_site(self):
        program, graph = build({"src/repro/sim/h.py": (
            "def arm(engine, delay, cb):\n"
            "    engine.schedule(delay, cb)\n"
            "def caller(engine, cb):\n"
            "    arm(engine, 1.5, cb)\n")})
        violations = CycleTaintAnalysis(program, graph).violations()
        assert len(violations) == 1
        assert "1.5" in violations[0][1].description

    def test_dram_timing_returns_are_trusted(self):
        program, graph = build({
            "src/repro/sim/i.py": (
                "from ..dram import timing\n"
                "def arm(engine, ns, cb):\n"
                "    engine.schedule(timing.to_cycles(ns), cb)\n"),
            "src/repro/dram/timing.py": (
                "def to_cycles(ns):\n"
                "    return ns * 1.25\n"),
        })
        assert CycleTaintAnalysis(program, graph).violations() == []


class TestPickleSafety:
    def test_subclass_closure_is_reached(self):
        program, graph = build({"src/repro/sim/j.py": (
            "class SchedulerBase:\n"
            "    __slots__ = ()\n"
            "class BadPolicy(SchedulerBase):\n"
            "    def __init__(self):\n"
            "        self.queue = []\n"
            "class SimSystem:\n"
            "    __slots__ = ('sched',)\n"
            "    def __init__(self, sched: SchedulerBase):\n"
            "        self.sched = sched\n")})
        flagged = [f.cls.name
                   for f in PickleReachability(program, graph).violations()]
        assert flagged == ["BadPolicy"]

    def test_undeclared_slot_assignment_is_flagged(self):
        program, graph = build({"src/repro/sim/k.py": (
            "class SimSystem:\n"
            "    __slots__ = ('a',)\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "    def late(self):\n"
            "        self.b = 1\n")})
        violations = PickleReachability(program, graph).violations()
        assert [f.kind for f in violations] == ["inconsistent-slots"]
        assert "b" in violations[0].detail

    def test_scheduled_bound_method_roots_its_class(self):
        program, graph = build({"src/repro/sim/m.py": (
            "class Engine:\n"
            "    __slots__ = ()\n"
            "    def every(self, period, callback):\n"
            "        pass\n"
            "class Probe:\n"
            "    def __init__(self, engine: Engine):\n"
            "        self.engine = engine\n"
            "    def fire(self):\n"
            "        pass\n"
            "    def install(self):\n"
            "        self.engine.every(8, self.fire)\n")})
        violations = PickleReachability(program, graph).violations()
        assert [f.cls.name for f in violations] == ["Probe"]
        assert violations[0].chain[0].startswith("<event-queue>")

    def test_jobspec_string_path_checked_inside_program(self):
        program, graph = build({
            "src/repro/runner/jobs.py": (
                "def run_job(x):\n"
                "    return x\n"),
            "src/repro/sweeps.py": (
                "class JobSpec:\n"
                "    @staticmethod\n"
                "    def create(name, fn):\n"
                "        return (name, fn)\n"
                "def good():\n"
                "    return JobSpec.create('a', 'repro.runner.jobs:run_job')\n"
                "def bad():\n"
                "    return JobSpec.create('b', 'repro.runner.jobs:missing')\n"),
        })
        problems = jobspec_violations(program, graph)
        assert len(problems) == 1
        assert "missing" in problems[0].detail

    def test_self_attribute_str_field_is_not_a_bound_method(self):
        # A declared `fn: str` field carries a module:qualname path (the
        # fabric's Manifest.expand idiom); only an actual method on the
        # class is a violation.
        program, graph = build({"src/repro/sweeps.py": (
            "class JobSpec:\n"
            "    @staticmethod\n"
            "    def create(name, fn):\n"
            "        return (name, fn)\n"
            "class Template:\n"
            "    fn: str\n"
            "    def score(self, value):\n"
            "        return value\n"
            "    def from_path(self):\n"
            "        return JobSpec.create('a', self.fn)\n"
            "    def from_method(self):\n"
            "        return JobSpec.create('b', self.score)\n"),
        })
        problems = jobspec_violations(program, graph)
        assert len(problems) == 1
        assert "self.score is a bound method" in problems[0].detail


class TestBaselineV2:
    def test_pass_partition(self):
        assert pass_for_rule("SIM004") == "simlint"
        assert pass_for_rule("SIM013") == "simflow"

    def test_save_partitions_and_load_merges(self, tmp_path):
        target = str(tmp_path / "baseline.json")
        Baseline(["src/a.py::SIM004::h1",
                  "src/b.py::SIM013::h2"]).save(target)
        with open(target) as handle:
            payload = json.load(handle)
        assert payload["version"] == 2
        assert payload["passes"]["simlint"] == ["src/a.py::SIM004::h1"]
        assert payload["passes"]["simflow"] == ["src/b.py::SIM013::h2"]
        assert len(Baseline.load(target)) == 2

    def test_version1_shim_still_loads(self, tmp_path):
        target = tmp_path / "v1.json"
        target.write_text(json.dumps(
            {"version": 1, "fingerprints": ["src/a.py::SIM004::h1"]}))
        assert len(Baseline.load(str(target))) == 1

    def test_unknown_version_is_rejected(self, tmp_path):
        target = tmp_path / "v9.json"
        target.write_text(json.dumps({"version": 9, "passes": {}}))
        with pytest.raises(ValueError):
            Baseline.load(str(target))


class TestCli:
    def run(self, *argv):
        import io
        out, err = io.StringIO(), io.StringIO()
        code = main(list(argv), stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def test_whole_program_flags_fixture(self):
        path = os.path.join(FIXTURES, FLOW_FIXTURES["SIM012"])
        code, out, _ = self.run(path, "--whole-program", "--no-baseline",
                                "--select", "SIM012")
        assert code == 1
        assert "SIM012" in out

    def test_whole_program_json_output(self):
        path = os.path.join(FIXTURES, FLOW_FIXTURES["SIM012"])
        code, out, _ = self.run(path, "--whole-program", "--no-baseline",
                                "--select", "SIM012", "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["new"][0]["rule"] == "SIM012"

    def test_whole_program_baseline_workflow(self, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        path = os.path.join(FIXTURES, FLOW_FIXTURES["SIM012"])
        code, _, _ = self.run(path, "--whole-program", "--select", "SIM012",
                              "--baseline", baseline, "--write-baseline")
        assert code == 0
        code, out, _ = self.run(path, "--whole-program", "--select",
                                "SIM012", "--baseline", baseline)
        assert code == 0
        assert "baselined" in out

    def test_without_flag_flow_rules_stay_silent(self):
        path = os.path.join(FIXTURES, FLOW_FIXTURES["SIM012"])
        code, out, _ = self.run(path, "--no-baseline", "--select", "SIM012")
        assert code == 0
        assert "clean" in out


class TestRepoIsClean:
    def test_src_has_no_flow_findings(self):
        findings = analyze_paths([os.path.join(REPO, "src")])
        assert findings == [], "\n".join(f.render_text()
                                         for f in findings)
