"""Unit tests for the DRAM substrate: timing, mapping, banks, device."""

import pytest

from repro.dram.address_map import AddressMapper
from repro.dram.bank import Bank
from repro.dram.device import DramDevice
from repro.dram.timing import DDR3_1333, DramTiming


class TestTiming:
    def test_table_ii_geometry(self):
        assert DDR3_1333.channels == 1
        assert DDR3_1333.ranks_per_channel == 1
        assert DDR3_1333.banks_per_rank == 8
        assert DDR3_1333.row_buffer_bytes == 8192

    def test_memory_clock_conversion(self):
        # 9 memory clocks at 3.6 CPU cycles each, rounded
        assert DDR3_1333.t_cl == 32

    def test_latency_ordering(self):
        t = DDR3_1333
        assert t.row_hit_latency < t.row_closed_latency \
            < t.row_conflict_latency

    def test_peak_bandwidth(self):
        # one 64B line per burst slot
        expected = 64 / DDR3_1333.t_bl
        assert DDR3_1333.peak_bandwidth_bytes_per_cycle() == \
            pytest.approx(expected)

    def test_total_banks(self):
        assert DDR3_1333.total_banks == 8


class TestAddressMapper:
    def test_consecutive_lines_walk_columns(self):
        mapper = AddressMapper(DDR3_1333)
        first = mapper.map(0)
        second = mapper.map(64)
        assert second.row == first.row
        assert second.bank == first.bank
        assert second.column == first.column + 1

    def test_row_spans_row_buffer_bytes(self):
        mapper = AddressMapper(DDR3_1333)
        lines_per_row = DDR3_1333.row_buffer_bytes // 64
        last_in_row = mapper.map((lines_per_row - 1) * 64)
        next_row = mapper.map(lines_per_row * 64)
        assert last_in_row.bank == 0
        assert next_row.bank == 1  # next bank before wrapping rows

    def test_bank_index_range(self):
        mapper = AddressMapper(DDR3_1333)
        indices = {mapper.bank_index(i * DDR3_1333.row_buffer_bytes)
                   for i in range(16)}
        assert indices == set(range(8))

    def test_distinct_rows_after_all_banks(self):
        mapper = AddressMapper(DDR3_1333)
        stride = DDR3_1333.row_buffer_bytes * DDR3_1333.banks_per_rank
        a = mapper.map(0)
        b = mapper.map(stride)
        assert b.bank == a.bank
        assert b.row == a.row + 1


class TestBank:
    def test_closed_bank_latency(self):
        bank = Bank(DDR3_1333)
        done = bank.access(row=5, now=0)
        assert done == DDR3_1333.row_closed_latency

    def test_row_hit_latency(self):
        bank = Bank(DDR3_1333)
        bank.access(row=5, now=0)
        start = bank.ready_cycle
        done = bank.access(row=5, now=start)
        assert done - start == DDR3_1333.row_hit_latency
        assert bank.row_hits == 1

    def test_row_conflict_includes_precharge(self):
        bank = Bank(DDR3_1333)
        bank.access(row=5, now=0)
        # Move far past tRC so only the conflict latency matters.
        now = 10_000
        done = bank.access(row=6, now=now)
        assert done - now == DDR3_1333.row_conflict_latency

    def test_trc_gates_back_to_back_activates(self):
        bank = Bank(DDR3_1333)
        bank.access(row=1, now=0)
        done = bank.access(row=2, now=1)
        # Second activate cannot start before tRC after the first.
        assert done >= DDR3_1333.t_rc

    def test_row_hits_pipeline_at_burst_rate(self):
        bank = Bank(DDR3_1333)
        bank.access(row=1, now=0)
        first_ready = bank.ready_cycle
        bank.access(row=1, now=first_ready)
        # Ready advanced by ~tBL, not by the full CAS latency.
        assert bank.ready_cycle - first_ready <= DDR3_1333.t_bl + 1

    def test_refresh_closes_row(self):
        bank = Bank(DDR3_1333)
        bank.access(row=1, now=0)
        bank.refresh(now=1000)
        assert bank.open_row is None
        assert bank.ready_cycle >= 1000 + DDR3_1333.t_rfc

    def test_write_recovery_extends_ready(self):
        read_bank = Bank(DDR3_1333)
        write_bank = Bank(DDR3_1333)
        read_bank.access(row=1, now=0, is_write=False)
        write_bank.access(row=1, now=0, is_write=True)
        assert write_bank.ready_cycle == \
            read_bank.ready_cycle + DDR3_1333.t_wr


class TestDevice:
    def make_device(self, refresh=False):
        timing = DramTiming(refresh_enabled=refresh)
        return DramDevice(timing), timing

    def test_streaming_throughput_near_bus_peak(self):
        device, timing = self.make_device()
        done = 0
        requests = 64
        now = 0
        for i in range(requests):
            done = device.service(i * 64, now)
            now = max(now, done - timing.t_cl)
        # One line per tBL after the pipeline fills.
        assert done <= timing.row_closed_latency \
            + requests * (timing.t_bl + 1)

    def test_row_hit_tracking(self):
        device, _ = self.make_device()
        device.service(0, 0)
        device.service(64, 0)
        assert device.row_hits == 1
        assert device.row_misses == 1

    def test_would_row_hit(self):
        device, _ = self.make_device()
        assert not device.would_row_hit(0)
        device.service(0, 0)
        assert device.would_row_hit(64)

    def test_bus_serialises_parallel_banks(self):
        device, timing = self.make_device()
        # Two requests to different banks at the same cycle: second data
        # burst must wait for the bus.
        done_a = device.service(0, 0)
        done_b = device.service(timing.row_buffer_bytes, 0)
        assert done_b >= done_a + timing.t_bl

    def test_refresh_steals_bandwidth(self):
        busy, _ = self.make_device(refresh=True)
        idle, _ = self.make_device(refresh=False)
        horizon = 200_000
        now_busy = now_idle = 0
        count_busy = count_idle = 0
        while now_busy < horizon:
            now_busy = busy.service(count_busy * 64, now_busy)
            count_busy += 1
        while now_idle < horizon:
            now_idle = idle.service(count_idle * 64, now_idle)
            count_idle += 1
        assert count_busy < count_idle

    def test_bank_ready_cycle_accessor(self):
        device, _ = self.make_device()
        device.service(0, 0)
        assert device.bank_ready_cycle(0) > 0
