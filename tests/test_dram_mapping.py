"""Tests for address-interleaving schemes and multi-channel DRAM."""

import pytest

from repro.dram.address_map import AddressMapper
from repro.dram.device import DramDevice
from repro.dram.timing import DramTiming
from repro.sim.system import SimSystem, single_config
from repro.workloads.trace import uniform_trace


class TestBankInterleaving:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(DramTiming(), scheme="diagonal")

    def test_consecutive_lines_rotate_banks(self):
        mapper = AddressMapper(DramTiming(), scheme="bank")
        banks = [mapper.map(i * 64).bank for i in range(8)]
        assert banks == list(range(8))

    def test_row_scheme_keeps_lines_in_row(self):
        mapper = AddressMapper(DramTiming(), scheme="row")
        rows = {mapper.map(i * 64).row for i in range(8)}
        banks = {mapper.map(i * 64).bank for i in range(8)}
        assert rows == {0}
        assert banks == {0}

    def test_mapping_is_injective_within_region(self):
        for scheme in AddressMapper.SCHEMES:
            mapper = AddressMapper(DramTiming(), scheme=scheme)
            seen = set()
            for i in range(4096):
                coords = mapper.map(i * 64)
                key = (coords.channel, coords.rank, coords.bank,
                       coords.row, coords.column)
                assert key not in seen
                seen.add(key)

    def test_streaming_row_hits_differ_by_scheme(self):
        timing = DramTiming(refresh_enabled=False)
        row_dev = DramDevice(timing, mapping_scheme="row")
        bank_dev = DramDevice(timing, mapping_scheme="bank")
        for i in range(256):
            row_dev.service(i * 64, 10_000 * i)
            bank_dev.service(i * 64, 10_000 * i)
        # Row interleaving turns a stream into row hits; bank
        # interleaving rotates banks so each line opens a row.
        assert row_dev.row_hits > bank_dev.row_hits

    def test_system_config_plumbs_scheme(self):
        config = single_config(dram_mapping="bank")
        system = SimSystem([uniform_trace(200, 10)], config=config)
        assert system.dram.mapper.scheme == "bank"
        system.run(5_000)


class TestMultiChannel:
    def test_two_channels_double_banks(self):
        timing = DramTiming(channels=2, refresh_enabled=False)
        assert timing.total_banks == 16
        device = DramDevice(timing)
        assert len(device.bus_free) == 2

    def test_channels_serve_in_parallel(self):
        timing = DramTiming(channels=2, refresh_enabled=False)
        mapper = AddressMapper(timing)
        device = DramDevice(timing)
        # Find two addresses on different channels (row interleaving
        # switches channel only after a full rank of banks: every 64KB).
        addresses = {}
        for i in range(4096):
            addresses.setdefault(mapper.map(i * 64).channel, i * 64)
            if len(addresses) == 2:
                break
        assert len(addresses) == 2
        done = [device.service(addr, 0) for addr in addresses.values()]
        # Neither burst waited for the other's bus.
        assert abs(done[0] - done[1]) < timing.t_bl

    def test_peak_bandwidth_scales_with_channels(self):
        one = DramTiming(channels=1)
        two = DramTiming(channels=2)
        assert two.peak_bandwidth_bytes_per_cycle() == pytest.approx(
            2 * one.peak_bandwidth_bytes_per_cycle())

    def test_multichannel_system_runs(self):
        config = single_config(
            timing=DramTiming(channels=2, refresh_enabled=False))
        system = SimSystem([uniform_trace(500, 5)], config=config)
        stats = system.run(10_000)
        assert stats.cores[0].dram_requests > 0
