"""Smoke tests: every example script runs end-to-end.

The examples are part of the public deliverable, so CI must catch an API
change that breaks them.  Each is executed in-process with a trimmed
cycle budget via its module-level constants.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

SLOW_EXAMPLES = {"multiprogram_fairness.py"}

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

EXAMPLE_PARAMS = [
    pytest.param(name, marks=[pytest.mark.slow] * (name in SLOW_EXAMPLES))
    for name in EXAMPLES
]


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", EXAMPLES_DIR / name)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLE_PARAMS)
def test_example_runs(name, capsys):
    module = load_example(name)
    # Shrink the budget so the whole suite stays fast.
    if hasattr(module, "CYCLES"):
        module.CYCLES = min(module.CYCLES, 40_000)
    module.main()
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3  # produced a real report


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 7
