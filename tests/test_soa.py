"""Unit tests for the struct-of-arrays trace columns (batched kernel)."""

from repro.dram.address_map import AddressMapper
from repro.dram.timing import DDR3_1333
from repro.sim.soa import (TraceColumns, _COLUMN_MEMO, dram_coord_table,
                           trace_columns, trace_key)
from repro.workloads.benchmarks import trace_for

LINE_BYTES = 64


class TestTraceColumns:
    def test_columns_match_iterator_replay(self):
        trace = trace_for("mcf", seed=9)
        columns = trace_columns(trace, LINE_BYTES)
        assert columns is not None
        events = list(iter(trace))
        assert columns.length == len(events)
        shift = LINE_BYTES.bit_length() - 1
        for index, event in enumerate(events):
            assert columns.works[index] == event[0]
            assert columns.addrs[index] == event[1]
            assert columns.iswrites[index] == bool(event[2])
            assert columns.lines[index] == event[1] >> shift

    def test_rows_zip_the_columns(self):
        columns = trace_columns(trace_for("omnetpp", seed=9), LINE_BYTES)
        assert len(columns.rows) == columns.length
        for index, (work, addr, is_write, line) in enumerate(columns.rows):
            assert work == columns.works[index]
            assert addr == columns.addrs[index]
            assert is_write == columns.iswrites[index]
            assert line == columns.lines[index]

    def test_columns_hold_plain_python_scalars(self):
        # np.int64 leaking into requests would poison fingerprints and
        # JSON documents downstream; the columns must be plain ints/bools.
        columns = trace_columns(trace_for("mcf", seed=9), LINE_BYTES)
        assert type(columns.works[0]) is int
        assert type(columns.addrs[0]) is int
        assert type(columns.iswrites[0]) is bool
        assert type(columns.lines[0]) is int

    def test_non_power_of_two_line_size_falls_back(self):
        assert trace_columns(trace_for("mcf", seed=9), 48) is None
        assert trace_columns(trace_for("mcf", seed=9), 0) is None

    def test_unmaterialisable_trace_falls_back(self):
        assert trace_columns(object(), LINE_BYTES) is None

    def test_memoized_per_profile_seed(self):
        a = trace_columns(trace_for("mcf", seed=9), LINE_BYTES)
        b = trace_columns(trace_for("mcf", seed=9), LINE_BYTES)
        assert a is b
        c = trace_columns(trace_for("mcf", seed=10), LINE_BYTES)
        assert c is not a

    def test_memo_stays_bounded(self):
        before = len(_COLUMN_MEMO)
        for seed in range(3):
            trace_columns(trace_for("mcf", seed=1000 + seed), LINE_BYTES)
        assert len(_COLUMN_MEMO) <= 64
        assert len(_COLUMN_MEMO) >= min(before, 61)

    def test_trace_key_requires_profile_and_seed(self):
        assert trace_key(object()) is None
        assert trace_key(trace_for("mcf", seed=9)) is not None


class TestDramCoordTable:
    def test_table_matches_scalar_mapper(self):
        trace = trace_for("mcf", seed=9)
        timing = DDR3_1333
        table = dram_coord_table(trace, timing, scheme="row")
        assert table is not None
        mapper = AddressMapper(timing, scheme="row")
        columns = trace_columns(trace, timing.line_bytes)
        lines = set(columns.lines)
        assert set(table) == lines
        for line in sorted(lines)[:64]:
            coords = mapper.map(line * timing.line_bytes)
            assert table[line] == (mapper.flat_index(coords), coords.row,
                                   coords.channel)

    def test_table_values_are_plain_ints(self):
        table = dram_coord_table(trace_for("mcf", seed=9), DDR3_1333,
                                 scheme="row")
        flat, row, channel = next(iter(table.values()))
        assert type(flat) is int and type(row) is int \
            and type(channel) is int
