"""Tests for the instruction-window (ROB) core model."""

import pytest

from repro.core.limiter import NoLimiter, StaticLimiter
from repro.sim.cache import Cache, CacheGeometry
from repro.sim.core_model import ShaperPort
from repro.sim.engine import Engine
from repro.sim.ooo_core import WindowCoreModel
from repro.sim.stats import CoreStats
from repro.sim.system import SimSystem, single_config
from repro.workloads.benchmarks import trace_for
from repro.workloads.trace import ListTrace, TraceEvent, uniform_trace


class Harness:
    """A window core wired to a sink with configurable response delay."""

    def __init__(self, trace, window=8, width=2, mshrs=4,
                 respond_after=None, limiter=None, l1_bytes=1024):
        self.engine = Engine()
        self.stats = CoreStats(core_id=0)
        self.sent = []

        def send(request):
            self.sent.append(request)
            if respond_after is not None:
                self.engine.schedule_in(
                    respond_after,
                    lambda r=request: self.core.on_response(r))

        self.port = ShaperPort(self.engine, limiter or NoLimiter(),
                               send=send, stats=self.stats)
        l1 = Cache(CacheGeometry(size_bytes=l1_bytes, ways=2))
        self.core = WindowCoreModel(0, self.engine, trace, l1, self.port,
                                    self.stats, window=window,
                                    width=width, mshrs=mshrs)

    def run(self, cycles):
        self.core.start()
        self.engine.run(until=cycles)
        return self.stats


class TestParameters:
    @pytest.mark.parametrize("kwargs", [
        dict(window=0), dict(width=0), dict(mshrs=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            Harness(uniform_trace(4, 1), **kwargs)

    def test_mlp_shim_reports_mshrs(self):
        harness = Harness(uniform_trace(4, 1), mshrs=6)
        assert harness.core.mlp == 6


class TestWindowDynamics:
    def test_progress_and_retirement(self):
        harness = Harness(uniform_trace(50, 3), respond_after=20)
        stats = harness.run(2_000)
        assert stats.retired > 20
        assert stats.work_cycles > 0

    def test_window_bounds_outstanding_entries(self):
        # No responses: the ROB fills to `window` and stops.
        harness = Harness(uniform_trace(100, 0), window=8, mshrs=16)
        harness.run(2_000)
        assert len(harness.core._rob) == 8

    def test_mshrs_bound_inflight_misses(self):
        harness = Harness(uniform_trace(100, 0), window=64, mshrs=3)
        harness.run(2_000)
        demand = [r for r in harness.sent if r.shaper_bin != -2]
        assert len(demand) == 3

    def test_independent_misses_overlap(self):
        # 4 independent misses, 100-cycle latency: with MLP they finish
        # in ~1 latency, not 4.
        trace = ListTrace([TraceEvent(0, i * 64, False)
                           for i in range(4)])
        harness = Harness(trace, mshrs=4, respond_after=100)
        stats = harness.run(150)
        assert stats.retired >= 4

    def test_dependent_misses_serialise(self):
        # The same 4 misses but chained: each must wait for the last.
        trace = ListTrace([TraceEvent(0, i * 64, False, i > 0)
                           for i in range(4)])
        harness = Harness(trace, mshrs=4, respond_after=100)
        stats = harness.run(150)
        assert stats.retired < 4
        harness.engine.run(until=600)
        assert harness.stats.retired >= 4

    def test_dependency_on_l1_hit_is_free(self):
        # Producer hits in L1 -> consumer dispatches immediately.
        trace = ListTrace([TraceEvent(0, 0, False),
                           TraceEvent(0, 16, False, True),
                           TraceEvent(0, 640, False, True)])
        harness = Harness(trace, respond_after=50, l1_bytes=128)
        harness.run(300)
        assert harness.stats.retired >= 3

    def test_in_order_retirement(self):
        # A slow miss at the head blocks a fast hit behind it.
        trace = ListTrace([TraceEvent(0, 0, False),
                           TraceEvent(0, 0, False)])
        harness = Harness(trace, respond_after=100)
        harness.run(50)
        assert harness.stats.retired == 0  # head miss not yet done
        harness.engine.run(until=400)
        assert harness.stats.retired >= 2

    def test_memory_stall_accounted_when_window_full(self):
        harness = Harness(uniform_trace(200, 0), window=4, mshrs=4,
                          respond_after=150)
        stats = harness.run(3_000)
        assert stats.memory_stall_cycles > 0

    def test_trace_wraps(self):
        harness = Harness(uniform_trace(3, 1), respond_after=5)
        harness.run(1_000)
        assert harness.core.wraps > 1


class TestShaperInteraction:
    def test_limiter_spacing_respected(self):
        trace = ListTrace([TraceEvent(0, i * 64, False)
                           for i in range(6)])
        harness = Harness(trace, limiter=StaticLimiter(30),
                          respond_after=10)
        harness.run(500)
        gaps = [b.issue_cycle - a.issue_cycle
                for a, b in zip(harness.sent, harness.sent[1:])]
        assert all(gap >= 30 for gap in gaps)


class TestSystemIntegration:
    def test_window_model_in_full_system(self):
        config = single_config(llc_size=64 * 1024, l1_size=8 * 1024,
                               core_model="window")
        system = SimSystem([trace_for("gcc")], config=config)
        stats = system.run(20_000)
        assert stats.cores[0].work_cycles > 0

    def test_unknown_core_model_rejected(self):
        config = single_config(core_model="vliw")
        with pytest.raises(ValueError):
            SimSystem([trace_for("gcc")], config=config)

    def test_pointer_chaser_latency_bound_under_window_model(self):
        """With real dependencies, mcf hides far less latency than the
        independent-miss streaming kernel does."""
        config = single_config(llc_size=64 * 1024, l1_size=8 * 1024,
                               core_model="window")
        works = {}
        for name in ("mcf", "libquantum"):
            system = SimSystem([trace_for(name)], config=config)
            stats = system.run(40_000)
            core = stats.cores[0]
            works[name] = core.work_cycles / max(1, core.dram_requests)
        # Work per memory request is lower for the dependent chaser.
        assert works["mcf"] < works["libquantum"] * 3
