"""Tests for repro.validate: bound oracle, property harness, corpus.

Four layers:

* unit checks of the analytic derivations (arrival curves, service
  model, system bounds) against hand-computed values;
* the acceptance-criterion proof that a deliberately weakened bound
  (the test-only ``bound_scale`` hook) raises :class:`BoundViolation`
  with correct core/cycle diagnostics on an otherwise healthy run;
* the seed-corpus regression: every scenario in
  ``tests/validate_corpus.json`` replays bit-identically through both
  event kernels with the checker attached;
* harness plumbing: scenario generation determinism, shrinking, the
  CLI's exit codes, and pickling of the structured failure types.
"""

import json
import pickle
from pathlib import Path

import pytest

from repro.analysis import contracts
from repro.core.bins import BinConfig, BinSpec
from repro.core.config_space import validate_bin_config, validate_credit_vector
from repro.core.shaper import MittsShaper
from repro.dram.timing import DDR3_1333
from repro.sim.system import SimSystem
from repro.validate import (ArrivalCurve, BoundChecker, BoundViolation,
                            PropertyFailure, Scenario, arrival_curve,
                            attach_checker, build_system, derive_bounds,
                            generate_scenario, run_scenario, service_model,
                            shrink_cycles)
from repro.validate.__main__ import main as validate_main
from repro.validate.properties import PROPERTIES

CORPUS = Path(__file__).parent / "validate_corpus.json"


def corpus_scenarios():
    entries = json.loads(CORPUS.read_text())["scenarios"]
    scenarios = []
    for i, entry in enumerate(entries):
        scenarios.append((entry["name"], Scenario(
            master_seed=-1, index=i, shape=entry["shape"],
            benchmarks=tuple(entry["benchmarks"]),
            trace_seed=entry["trace_seed"],
            num_bins=entry["num_bins"],
            interval_length=entry["interval_length"],
            credits=tuple(tuple(v) for v in entry["credits"]),
            method=entry["method"], cycles=entry["cycles"],
            check_period=entry["check_period"])))
    return scenarios


class TestArrivalCurve:
    def test_rate_and_burst(self):
        config = BinConfig.from_credits([4, 0, 0, 0, 0, 0, 0, 0, 0, 2])
        # T_r = 4*5 + 2*95 = 210
        curve = arrival_curve(config, outstanding=4)
        assert curve.period == 210
        assert curve.rate == pytest.approx(6 / 210)
        assert curve.burst == 2 * 6 + 4

    def test_pinned_period_overrides_natural(self):
        config = BinConfig.from_credits([4, 0, 0, 0, 0, 0, 0, 0, 0, 2])
        curve = arrival_curve(config, outstanding=4, period=100)
        assert curve.period == 100
        assert curve.rate == pytest.approx(6 / 100)

    def test_bound_is_affine(self):
        curve = ArrivalCurve(rate=0.5, burst=3.0, period=10)
        assert curve.bound(0) == 3.0
        assert curve.bound(20) == pytest.approx(13.0)


class TestServiceModel:
    def test_ddr3_values(self):
        model = service_model(DDR3_1333)
        assert model.worst_gap == max(
            DDR3_1333.t_rc,
            DDR3_1333.t_rp + DDR3_1333.t_rcd + DDR3_1333.t_bl
            + DDR3_1333.t_wr)
        assert 0.0 < model.availability < 1.0
        assert model.rate == pytest.approx(
            model.availability / model.worst_gap)
        assert model.total_banks == DDR3_1333.total_banks

    def test_refresh_disabled(self):
        from dataclasses import replace
        model = service_model(replace(DDR3_1333, refresh_enabled=False))
        assert model.availability == 1.0
        assert model.refresh_window == 0


class TestDeriveBounds:
    def test_shaped_system_has_curves_and_limits(self):
        scenario = generate_scenario(0, 0)
        system, _ = build_system(scenario, with_checker=False)
        bounds = derive_bounds(system)
        assert len(bounds.curves) == len(scenario.benchmarks)
        for limits, vector in zip(bounds.credit_limits, scenario.credits):
            assert limits == tuple(vector)
        assert all(cap >= 1 for cap in bounds.demand_caps)
        assert bounds.observation_slack > 0

    def test_method1_gets_no_curve(self):
        from dataclasses import replace
        scenario = replace(generate_scenario(0, 0),
                           method=MittsShaper.METHOD_TIMESTAMP)
        system, _ = build_system(scenario, with_checker=False)
        bounds = derive_bounds(system)
        assert all(curve is None for curve in bounds.curves)
        assert all(limits is not None for limits in bounds.credit_limits)
        # no full set of curves -> no aggregate backlog/sojourn bound
        assert bounds.backlog is None and bounds.sojourn is None

    def test_derivation_is_pure(self):
        scenario = generate_scenario(0, 1)
        system, _ = build_system(scenario, with_checker=False)
        assert derive_bounds(system) == derive_bounds(system)


class TestWeakenedBound:
    """Acceptance criterion: a weakened bound provably fires."""

    def test_zero_scale_raises_with_diagnostics(self):
        scenario = generate_scenario(0, 0)
        system, checker = build_system(scenario, bound_scale=0.0)
        with pytest.raises(BoundViolation) as excinfo:
            system.run(scenario.cycles)
        error = excinfo.value
        assert error.kind in ("credit_occupancy", "arrival_curve",
                              "mc_demand_cap", "mc_backlog", "mc_sojourn")
        assert error.core is None or 0 <= error.core < len(
            scenario.benchmarks)
        assert 0 < error.cycle <= scenario.cycles
        assert error.observed > error.bound
        # the cycle in the message matches the structured field
        assert str(error.cycle) in str(error)

    def test_violation_reaches_contracts_observers(self):
        scenario = generate_scenario(0, 0)
        system, checker = build_system(scenario, bound_scale=0.0)
        seen = []
        contracts.add_observer(seen.append)
        try:
            with pytest.raises(BoundViolation):
                system.run(scenario.cycles)
        finally:
            contracts.remove_observer(seen.append)
        assert len(seen) == 1 and isinstance(seen[0], BoundViolation)

    def test_violation_pickles_intact(self):
        error = BoundViolation("mc_sojourn", 2, 12345, 99.0, 42.0,
                               "req 7 arrived 11000")
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.kind, clone.core, clone.cycle, clone.observed,
                clone.bound, clone.detail) == \
            ("mc_sojourn", 2, 12345, 99.0, 42.0, "req 7 arrived 11000")
        assert str(clone) == str(error)

    def test_healthy_run_is_clean_and_checker_is_live(self):
        scenario = generate_scenario(0, 0)
        system, checker = build_system(scenario)
        system.run(scenario.cycles)
        assert checker.checks["credit"] > 0
        assert checker.checks["arrival"] > 0
        assert checker.checks["demand_cap"] > 0


class TestCorpus:
    """Satellite (a): the hand-picked edge scenarios stay green."""

    @pytest.mark.parametrize("name,scenario", corpus_scenarios())
    def test_corpus_replays_identically_on_both_kernels(self, name,
                                                        scenario):
        heap, heap_checker = build_system(scenario, kernel="heap")
        batched, batched_checker = build_system(scenario, kernel="batched")
        heap.run(scenario.cycles)
        batched.run(scenario.cycles)
        assert heap.stats.snapshot() == batched.stats.snapshot(), name
        for checker in (heap_checker, batched_checker):
            assert checker.checks["credit"] > 0

    def test_corpus_is_wellformed(self):
        scenarios = corpus_scenarios()
        assert len(scenarios) >= 6
        shapes = {scenario.shape for _, scenario in scenarios}
        assert {"all_burst", "single_token", "boundary"} <= shapes
        for _, scenario in scenarios:
            scenario.bin_configs()  # raises if outside the accepted space


class TestScenarioGeneration:
    def test_deterministic(self):
        assert generate_scenario(7, 3) == generate_scenario(7, 3)
        assert generate_scenario(7, 3) != generate_scenario(7, 4)
        assert generate_scenario(7, 3) != generate_scenario(8, 3)

    def test_vectors_always_valid(self):
        for index in range(24):
            scenario = generate_scenario(123, index)
            scenario.bin_configs()  # raises on an invalid vector
            assert 1 <= len(scenario.benchmarks) <= 3

    def test_edge_shapes_rotate_in(self):
        shapes = {generate_scenario(0, i).shape for i in range(8)}
        assert {"all_burst", "single_token", "boundary", "sparse",
                "random"} <= shapes


class TestShrinking:
    def test_bisects_to_threshold(self):
        scenario = generate_scenario(0, 0)
        threshold = scenario.cycles // 3

        def fails_past_threshold(derived):
            if derived.cycles >= threshold:
                raise PropertyFailure("synthetic", derived, "too long")

        PROPERTIES["synthetic"] = fails_past_threshold
        try:
            shrunk = shrink_cycles("synthetic", scenario)
        finally:
            del PROPERTIES["synthetic"]
        assert threshold <= shrunk < scenario.cycles

    def test_property_failure_pickles(self):
        scenario = generate_scenario(0, 2)
        error = PropertyFailure("kernels", scenario, "snapshots differ")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.prop == "kernels"
        assert clone.scenario == scenario
        assert str(clone) == str(error)


class TestCli:
    def test_passing_run_exits_zero(self, capsys):
        assert validate_main(["--scenarios", "2", "--seed", "0",
                              "--only", "bounds"]) == 0
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out and "held" in out

    def test_all_properties_small_run(self, capsys):
        assert validate_main(["--scenarios", "1", "--seed", "3"]) == 0

    def test_rejects_bad_scenario_count(self):
        with pytest.raises(SystemExit):
            validate_main(["--scenarios", "0"])

    def test_run_scenario_respects_only(self):
        scenario = generate_scenario(0, 0)
        assert run_scenario(scenario, only="bounds") == []


class TestCheckerCheckpointing:
    def test_checker_rides_checkpoints(self, tmp_path):
        scenario = generate_scenario(0, 0)
        system, checker = build_system(scenario)
        system.run(scenario.cycles // 2)
        path = tmp_path / "mid.ckpt"
        system.save_checkpoint(path)
        resumed = SimSystem.load_checkpoint(path)
        restored = resumed.mc.probe
        assert isinstance(restored, BoundChecker)
        assert restored.bounds == checker.bounds
        resumed.run(scenario.cycles - scenario.cycles // 2)
        assert restored.checks["credit"] >= checker.checks["credit"]

    def test_parked_port_checkpoint_restores(self, tmp_path):
        """Regression: a parked shaped port's pending wake event used to
        make pickle build a core before its port's state was set
        (``'ShaperPort' object has no attribute 'send'``); found by the
        property harness (seed 0, scenario 11)."""
        scenario = generate_scenario(0, 11)
        reference, _ = build_system(scenario)
        reference.run(scenario.cycles)
        first, _ = build_system(scenario)
        first.run(scenario.cycles // 2)
        path = tmp_path / "parked.ckpt"
        first.save_checkpoint(path)
        resumed = SimSystem.load_checkpoint(path)
        resumed.run(scenario.cycles - scenario.cycles // 2)
        assert resumed.stats.snapshot() == reference.stats.snapshot()


class TestConfigSpaceErrors:
    """Satellite (d): errors name both the core and the bin."""

    def test_core_and_bin_in_message(self):
        spec = BinSpec()
        with pytest.raises(ValueError, match=r"core 3: bin\(s\) \[2\]"):
            validate_credit_vector([0, 0, -1] + [0] * 7, spec, core=3)

    def test_core_prefix_on_all_paths(self):
        spec = BinSpec(num_bins=4)
        cases = [
            [1, 1, 1, 1, 1],        # unreachable bins
            [1, 1],                  # unconfigured bins
            [0, 0, 2000, 0],         # over the register limit
            [0, 0, 0, 0],            # all-zero
        ]
        for vector in cases:
            with pytest.raises(ValueError, match="core 7: "):
                validate_credit_vector(vector, spec, core=7)

    def test_no_core_no_prefix(self):
        spec = BinSpec(num_bins=4)
        with pytest.raises(ValueError) as excinfo:
            validate_credit_vector([0, 0, 0, 0], spec)
        assert not str(excinfo.value).startswith("core ")

    def test_bin_config_passthrough_takes_core(self):
        config = BinConfig.from_credits([1] + [0] * 9)
        assert validate_bin_config(config, core=1) is config

    def test_genome_validation_uses_core_context(self):
        from repro.tuning.genome import validate_genome
        spec = BinSpec(num_bins=4)
        good = BinConfig(spec=spec, credits=(1, 0, 0, 0))
        bad = BinConfig(spec=spec, credits=(0, 0, 0, 0))
        with pytest.raises(ValueError, match=r"core 1: all bins 0\.\.3"):
            validate_genome([good, bad])
