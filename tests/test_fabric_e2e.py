"""End-to-end fabric scenarios: drains, failures, GA batches, CLI,
and the two-pool kill/steal/fingerprint acceptance run."""

import json

import pytest

from repro.core.bins import BinSpec
from repro.fabric import (CampaignQueue, FabricBatchEvaluator, ResultsDb,
                          parse_manifest, run_campaign_serial,
                          work_campaign)
from repro.fabric.__main__ import main as fabric_main
from repro.runner import Runner, RunnerConfig
from repro.runner.jobspec import JobSpec
from repro.tuning.ga import GaParams, GeneticAlgorithm
from tests._fabric_jobs import ToyEvaluator


class TestWorkCampaign:
    def test_pool_drain_matches_serial(self, tmp_path):
        manifest = parse_manifest({
            "name": "e2e", "fn": "tests._fabric_jobs:scaled_metric",
            "grid": {"x": [1, 2, 3, 4, 5]}})
        serial = CampaignQueue.submit(tmp_path / "serial", manifest)
        pooled = CampaignQueue.submit(tmp_path / "pooled", manifest)
        assert run_campaign_serial(serial)["done"] == 5
        counters = work_campaign(pooled, jobs=2, pool=True)
        assert counters == {"executed": 5, "done": 5, "failed": 0,
                            "stolen": 0, "quarantined": 0,
                            "released": 0, "disposition": "complete"}
        with ResultsDb(tmp_path / "a.sqlite") as db:
            db.merge_queue(serial)
            left = db.fingerprint(serial.campaign_id)
        with ResultsDb(tmp_path / "b.sqlite") as db:
            db.merge_queue(pooled)
            assert db.fingerprint(pooled.campaign_id) == left

    def test_deterministic_failures_recorded_not_retried(self, tmp_path):
        manifest = parse_manifest({
            "name": "odd", "fn": "tests._fabric_jobs:fail_on_odd",
            "grid": {"x": [1, 2, 3]}})
        queue = CampaignQueue.submit(tmp_path, manifest)
        counters = work_campaign(queue, jobs=1, pool=False)
        assert counters["done"] == 1
        assert counters["failed"] == 2
        assert queue.is_drained()  # failures are terminal, not dangling
        record = queue.load_result(0)
        assert record["status"] == "failed"
        assert "ValueError" in record["error"]
        assert record["attempts"] == 1  # deterministic: never retried

    def test_failed_campaign_is_still_deterministic(self, tmp_path):
        manifest = parse_manifest({
            "name": "odd", "fn": "tests._fabric_jobs:fail_on_odd",
            "grid": {"x": [1, 2, 3]}})
        prints = []
        for sub in ("a", "b"):
            queue = CampaignQueue.submit(tmp_path / sub, manifest)
            work_campaign(queue, jobs=1, pool=False)
            with ResultsDb(tmp_path / f"{sub}.sqlite") as db:
                db.merge_queue(queue)
                prints.append(db.fingerprint(queue.campaign_id))
        assert prints[0] == prints[1]

    def test_max_jobs_bounds_execution(self, tmp_path):
        manifest = parse_manifest({
            "name": "cap", "fn": "tests._fabric_jobs:add_one",
            "grid": {"x": [1, 2, 3, 4]}})
        queue = CampaignQueue.submit(tmp_path, manifest)
        counters = work_campaign(queue, pool=False, max_jobs=2,
                                 wait_for_drain=False)
        assert counters["executed"] == 2
        assert not queue.is_drained()


class TestHeartbeat:
    def test_heartbeat_sees_in_flight_job_ids(self):
        beats = []
        config = RunnerConfig(jobs=1, heartbeat=beats.append)
        with Runner(config) as runner:
            runner.run([JobSpec.create("hb", "tests._fabric_jobs:add_one",
                                       1)])
        assert ["hb"] in beats

    def test_raising_heartbeat_is_contained(self):
        def explode(job_ids):
            raise RuntimeError("renewal outage")
        config = RunnerConfig(jobs=1, heartbeat=explode)
        with Runner(config) as runner:
            sweep = runner.run([JobSpec.create(
                "hb", "tests._fabric_jobs:add_one", 41)])
        assert sweep["hb"].value == 42

    def test_worker_heartbeat_keeps_lease_alive(self, tmp_path):
        manifest = parse_manifest({
            "name": "lease", "fn": "tests._fabric_jobs:add_one",
            "grid": {"x": [1]}})
        queue = CampaignQueue.submit(tmp_path, manifest)
        # Drain with an extremely short lease: without in-run renewal a
        # second claimant could steal mid-execution; with the heartbeat
        # the single worker finishes untroubled.
        counters = work_campaign(queue, jobs=1, pool=False,
                                 lease_seconds=0.05)
        assert counters == {"executed": 1, "done": 1, "failed": 0,
                            "stolen": 0, "quarantined": 0,
                            "released": 0, "disposition": "complete"}


class TestGaBatches:
    def test_fabric_ga_matches_plain_ga(self, tmp_path):
        evaluator = ToyEvaluator()
        params = GaParams(generations=3, population=5, seed=9)
        plain = GeneticAlgorithm(evaluator, BinSpec(), 2, params).run()

        fabric_eval = FabricBatchEvaluator(evaluator, tmp_path / "ga",
                                           label="t")
        fabric = GeneticAlgorithm(evaluator, BinSpec(), 2, params,
                                  batch_evaluator=fabric_eval).run()
        assert fabric.history == plain.history
        assert fabric.best_genome == plain.best_genome
        assert fabric.evaluations == plain.evaluations
        # one campaign batch per generation that had fresh genomes
        assert 1 <= len(fabric_eval.campaign_ids) <= params.generations
        assert fabric_eval.generation == params.generations - 1

    def test_batches_are_resumable_campaigns(self, tmp_path):
        evaluator = ToyEvaluator()
        fabric_eval = FabricBatchEvaluator(evaluator, tmp_path / "ga",
                                           label="t")
        params = GaParams(generations=2, population=4, seed=3)
        GeneticAlgorithm(evaluator, BinSpec(), 1, params,
                         batch_evaluator=fabric_eval).run()
        for campaign_id in fabric_eval.campaign_ids:
            queue = CampaignQueue(tmp_path / "ga", campaign_id)
            assert queue.is_submitted()
            assert queue.is_drained()


class TestCli:
    def submit(self, tmp_path, capsys):
        manifest_path = tmp_path / "sweep.json"
        manifest_path.write_text(json.dumps({
            "name": "cli", "fn": "tests._fabric_jobs:scaled_metric",
            "grid": {"x": [1, 2, 3]}}), encoding="utf-8")
        root = str(tmp_path / "runs")
        assert fabric_main(["submit", str(manifest_path),
                            "--queue-root", root]) == 0
        out = capsys.readouterr().out
        assert "3 jobs" in out
        return root

    def test_submit_work_status_query_plot(self, tmp_path, capsys):
        root = self.submit(tmp_path, capsys)
        assert fabric_main(["work", root, "--inline", "--no-wait"]) == 0
        assert "3 done" in capsys.readouterr().out

        assert fabric_main(["status", root]) == 0
        assert "3/3 done" in capsys.readouterr().out

        csv_path = tmp_path / "out.csv"
        assert fabric_main(["query", root, "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "scaled" in out
        assert csv_path.read_text(encoding="utf-8").count("\n") == 4

        assert fabric_main(["query", root, "--sql",
                            "SELECT COUNT(*) FROM results"]) == 0
        assert "3" in capsys.readouterr().out

        figure = tmp_path / "fig.svg"
        assert fabric_main(["plot", root, "-x", "x", "-y", "scaled",
                            "-o", str(figure)]) == 0
        capsys.readouterr()
        assert figure.read_text(encoding="utf-8").startswith("<svg")

    def test_query_fingerprint_stable_across_workers(self, tmp_path,
                                                     capsys):
        root = self.submit(tmp_path, capsys)
        assert fabric_main(["work", root, "--inline", "--no-wait"]) == 0
        capsys.readouterr()
        assert fabric_main(["query", root, "--fingerprint"]) == 0
        first = capsys.readouterr().out.strip()
        assert fabric_main(["query", root, "--fingerprint"]) == 0
        assert capsys.readouterr().out.strip() == first
        assert len(first) == 64

    def test_errors_exit_2(self, tmp_path, capsys):
        assert fabric_main(["work", str(tmp_path / "empty")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_failed_jobs_exit_degraded(self, tmp_path, capsys):
        manifest_path = tmp_path / "bad.json"
        manifest_path.write_text(json.dumps({
            "name": "bad", "fn": "tests._fabric_jobs:fail_on_odd",
            "grid": {"x": [1]}}), encoding="utf-8")
        root = str(tmp_path / "runs")
        assert fabric_main(["submit", str(manifest_path),
                            "--queue-root", root]) == 0
        # Disposition contract: terminal-with-failures exits 3.
        assert fabric_main(["work", root, "--inline", "--no-wait"]) == 3
        out = capsys.readouterr().out
        assert "complete-degraded" in out


@pytest.mark.slow
@pytest.mark.usefixtures("tmp_path")
class TestKillRecovery:
    """The acceptance scenario, scaled down for the tier-1 suite.

    Two subprocess worker pools drain one simulation campaign; one is
    seeded to die ``kill -9``-style after claiming a job.  The survivor
    must steal the orphaned claim after lease expiry, the campaign must
    drain completely, and the merged database must be bit-identical to
    a serial drain (the CI ``fabric-smoke`` job runs the same scenario
    bigger, via ``python -m repro.fabric selfcheck``).
    """

    def test_two_pools_one_killed(self, tmp_path):
        from repro.fabric.selfcheck import run_selfcheck

        report = run_selfcheck(tmp_path, num_jobs=6, cycles=1_200,
                               echo=lambda *_args: None)
        assert report["victim_exit"] == 137
        assert report["survivor_exit"] == 0
        assert report["done"] == 6
        assert report["stolen"] >= 1
        assert report["fingerprints_match"], report
        assert report["ok"], report
