"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "hw_cost" in out

    def test_run_single_experiment(self, capsys):
        assert main(["hw_cost"]) == 0
        out = capsys.readouterr().out
        assert "=== hw_cost" in out
        assert "core fraction" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_experiments_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["hw_cost", "--scale", "huge"])

    def test_seed_flag(self, capsys):
        assert main(["hw_cost", "--seed", "7"]) == 0
        assert "seed 7" in capsys.readouterr().out


class TestReconfigureApi:
    def test_request_reconfigure_rejected_while_configuring(self):
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.tuning.online import OnlineGaTuner
        from repro.workloads.benchmarks import trace_for

        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        tuner = OnlineGaTuner(system, generations=1, population=3,
                              epoch=1_000, overhead_cycles=0)
        system.run(500)  # inside the CONFIG_PHASE
        assert tuner.configuring
        assert not tuner.request_reconfigure()

    def test_request_reconfigure_accepted_in_run_phase(self):
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.tuning.online import OnlineGaTuner
        from repro.workloads.benchmarks import trace_for

        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        tuner = OnlineGaTuner(system, generations=1, population=3,
                              epoch=800, overhead_cycles=0)
        system.run(40_000)
        assert not tuner.configuring
        first_run_phase = tuner.run_phase_started_at
        assert tuner.request_reconfigure()
        system.run(40_000)
        assert tuner.run_phase_started_at > first_run_phase

    def test_stale_epoch_callbacks_ignored(self):
        """Restarting mid-CONFIG_PHASE must not corrupt the state machine
        (the bug the phase tokens exist to prevent)."""
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.tuning.online import OnlineGaTuner
        from repro.workloads.benchmarks import trace_for

        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=1_000, overhead_cycles=0)
        system.run(3_500)  # mid-phase
        tuner._begin_config_phase()  # forced restart (stale events live)
        system.run(60_000)  # must complete without IndexError
        assert tuner.best_genome is not None


class TestSweepFlags:
    """--jobs / --cache-dir / --resume / --require-cached."""

    def test_jobs_flag_smoke(self, capsys):
        assert main(["hw_cost", "--jobs", "2", "--no-progress"]) == 0
        assert "=== hw_cost" in capsys.readouterr().out

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["hw_cost", "--jobs", "0"])

    def test_resume_reports_full_cache_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["hw_cost", "--cache-dir", cache_dir,
                     "--no-progress"]) == 0
        first = capsys.readouterr().out
        assert "cache hits: 0/1" in first
        assert main(["hw_cost", "--cache-dir", cache_dir,
                     "--require-cached", "--no-progress"]) == 0
        second = capsys.readouterr().out
        assert "cache hits: 1/1" in second
        assert "(smoke, seed 1, cache)" in second

    def test_require_cached_fails_on_cold_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cold")
        assert main(["hw_cost", "--cache-dir", cache_dir,
                     "--require-cached", "--no-progress"]) == 1
        assert "--require-cached" in capsys.readouterr().out

    def test_cache_distinguishes_seed(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["hw_cost", "--cache-dir", cache_dir,
                     "--no-progress"]) == 0
        capsys.readouterr()
        assert main(["hw_cost", "--seed", "2", "--cache-dir", cache_dir,
                     "--no-progress"]) == 0
        assert "cache hits: 0/1" in capsys.readouterr().out


class TestDiffCommand:
    """python -m repro.experiments --diff BEFORE_DIR AFTER_DIR."""

    def save(self, directory, summary):
        from repro.experiments.common import Result
        from repro.experiments.store import save_result

        result = Result(experiment="fake", title="t", headers=["h"],
                        rows=[[1]], summary=dict(summary))
        save_result(result, directory / "fake.json")

    def test_identical_dirs_exit_zero(self, tmp_path, capsys):
        before, after = tmp_path / "a", tmp_path / "b"
        self.save(before, {"metric": 1.0})
        self.save(after, {"metric": 1.0})
        assert main(["--diff", str(before), str(after)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out
        assert "0 significant change(s)" in out

    def test_significant_change_exits_nonzero(self, tmp_path, capsys):
        before, after = tmp_path / "a", tmp_path / "b"
        self.save(before, {"metric": 1.0})
        self.save(after, {"metric": 2.0})
        assert main(["--diff", str(before), str(after)]) == 1
        out = capsys.readouterr().out
        assert "+100.00%" in out

    def test_within_tolerance_exits_zero(self, tmp_path):
        before, after = tmp_path / "a", tmp_path / "b"
        self.save(before, {"metric": 1.0})
        self.save(after, {"metric": 1.01})
        assert main(["--diff", str(before), str(after)]) == 0
        assert main(["--diff", str(before), str(after),
                     "--diff-tolerance", "0.001"]) == 1

    def test_no_common_files_exits_nonzero(self, tmp_path, capsys):
        before, after = tmp_path / "a", tmp_path / "b"
        before.mkdir(), after.mkdir()
        assert main(["--diff", str(before), str(after)]) == 1
        assert "no common experiment files" in capsys.readouterr().out


class TestDiffSymmetry:
    """Experiments present on only one side fail the diff both ways."""

    def save(self, directory, name, summary):
        from repro.experiments.common import Result
        from repro.experiments.store import save_result

        result = Result(experiment=name, title="t", headers=["h"],
                        rows=[[1]], summary=dict(summary))
        save_result(result, directory / f"{name}.json")

    def test_missing_from_after_exits_nonzero(self, tmp_path, capsys):
        before, after = tmp_path / "a", tmp_path / "b"
        self.save(before, "common", {"metric": 1.0})
        self.save(before, "gone", {"metric": 1.0})
        self.save(after, "common", {"metric": 1.0})
        assert main(["--diff", str(before), str(after)]) == 1
        out = capsys.readouterr().out
        assert f"missing: gone present only in {before}" in out
        assert "1 experiment(s) missing from one side" in out

    def test_missing_from_before_exits_nonzero(self, tmp_path, capsys):
        before, after = tmp_path / "a", tmp_path / "b"
        self.save(before, "common", {"metric": 1.0})
        self.save(after, "common", {"metric": 1.0})
        self.save(after, "novel", {"metric": 1.0})
        assert main(["--diff", str(before), str(after)]) == 1
        out = capsys.readouterr().out
        assert f"missing: novel present only in {after}" in out

    def test_symmetric_reporting_both_directions(self, tmp_path, capsys):
        """Swapping the argument order reports the same missing set."""
        left, right = tmp_path / "a", tmp_path / "b"
        self.save(left, "common", {"metric": 1.0})
        self.save(left, "leftonly", {"metric": 1.0})
        self.save(right, "common", {"metric": 1.0})
        self.save(right, "rightonly", {"metric": 1.0})
        assert main(["--diff", str(left), str(right)]) == 1
        forward = capsys.readouterr().out
        assert main(["--diff", str(right), str(left)]) == 1
        backward = capsys.readouterr().out
        for out in (forward, backward):
            assert "leftonly" in out
            assert "rightonly" in out
            assert "2 experiment(s) missing from one side" in out

    def test_metric_missing_either_side_is_significant(self, tmp_path,
                                                       capsys):
        before, after = tmp_path / "a", tmp_path / "b"
        self.save(before, "common", {"kept": 1.0, "dropped": 2.0})
        self.save(after, "common", {"kept": 1.0, "added": 3.0})
        assert main(["--diff", str(before), str(after)]) == 1
        out = capsys.readouterr().out
        assert "dropped" in out and "added" in out
        assert "missing" in out  # rendered as a missing-side value


class TestCacheFingerprintInterplay:
    """--resume/--require-cached vs corruption and code changes."""

    def test_code_fingerprint_change_defeats_resume(self, tmp_path,
                                                    capsys, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        assert main(["hw_cost", "--cache-dir", cache_dir,
                     "--no-progress"]) == 0
        capsys.readouterr()
        # Same cache, same spec -- but the source tree "changed", so a
        # resume that insists on cache hits must fail loudly rather
        # than serve results computed by different code.
        import repro.runner.cache as cache_module
        monkeypatch.setattr(cache_module, "code_fingerprint",
                            lambda: "a-different-source-tree")
        assert main(["hw_cost", "--cache-dir", cache_dir, "--resume",
                     "--require-cached", "--no-progress"]) == 1
        out = capsys.readouterr().out
        assert "cache hits: 0/1" in out
        assert "--require-cached" in out
        # the recompute was stored under the NEW fingerprint, so a
        # plain resume against the changed tree now hits cleanly
        assert main(["hw_cost", "--cache-dir", cache_dir, "--resume",
                     "--no-progress"]) == 0
        assert "cache hits: 1/1" in capsys.readouterr().out
        # while the original tree's entry is untouched and still hit
        monkeypatch.undo()
        assert main(["hw_cost", "--cache-dir", cache_dir, "--resume",
                     "--require-cached", "--no-progress"]) == 0
        assert "cache hits: 1/1" in capsys.readouterr().out

    def test_corrupt_entry_recomputed_then_cached_again(self, tmp_path,
                                                        capsys):
        cache_dir = tmp_path / "cache"
        assert main(["hw_cost", "--cache-dir", str(cache_dir),
                     "--no-progress"]) == 0
        capsys.readouterr()
        entries = list(cache_dir.rglob("*.pkl"))
        assert len(entries) == 1
        raw = bytearray(entries[0].read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        entries[0].write_bytes(bytes(raw))
        # The corrupted entry is discarded, so --require-cached fails...
        assert main(["hw_cost", "--cache-dir", str(cache_dir),
                     "--resume", "--require-cached",
                     "--no-progress"]) == 1
        assert "cache hits: 0/1" in capsys.readouterr().out
        # ...and that recovery run re-stored a good entry: the next
        # resume is a clean hit again.
        assert main(["hw_cost", "--cache-dir", str(cache_dir),
                     "--resume", "--require-cached",
                     "--no-progress"]) == 0
        assert "cache hits: 1/1" in capsys.readouterr().out
