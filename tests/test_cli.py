"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "hw_cost" in out

    def test_run_single_experiment(self, capsys):
        assert main(["hw_cost"]) == 0
        out = capsys.readouterr().out
        assert "=== hw_cost" in out
        assert "core fraction" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_experiments_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["hw_cost", "--scale", "huge"])

    def test_seed_flag(self, capsys):
        assert main(["hw_cost", "--seed", "7"]) == 0
        assert "seed 7" in capsys.readouterr().out


class TestReconfigureApi:
    def test_request_reconfigure_rejected_while_configuring(self):
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.tuning.online import OnlineGaTuner
        from repro.workloads.benchmarks import trace_for

        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        tuner = OnlineGaTuner(system, generations=1, population=3,
                              epoch=1_000, overhead_cycles=0)
        system.run(500)  # inside the CONFIG_PHASE
        assert tuner.configuring
        assert not tuner.request_reconfigure()

    def test_request_reconfigure_accepted_in_run_phase(self):
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.tuning.online import OnlineGaTuner
        from repro.workloads.benchmarks import trace_for

        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        tuner = OnlineGaTuner(system, generations=1, population=3,
                              epoch=800, overhead_cycles=0)
        system.run(40_000)
        assert not tuner.configuring
        first_run_phase = tuner.run_phase_started_at
        assert tuner.request_reconfigure()
        system.run(40_000)
        assert tuner.run_phase_started_at > first_run_phase

    def test_stale_epoch_callbacks_ignored(self):
        """Restarting mid-CONFIG_PHASE must not corrupt the state machine
        (the bug the phase tokens exist to prevent)."""
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.tuning.online import OnlineGaTuner
        from repro.workloads.benchmarks import trace_for

        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        tuner = OnlineGaTuner(system, generations=2, population=4,
                              epoch=1_000, overhead_cycles=0)
        system.run(3_500)  # mid-phase
        tuner._begin_config_phase()  # forced restart (stale events live)
        system.run(60_000)  # must complete without IndexError
        assert tuner.best_genome is not None
