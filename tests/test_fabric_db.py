"""Results database: deterministic merge, fingerprint, query, plot."""

import json

import pytest

from repro.fabric.db import (DbError, ResultsDb, encode_value,
                             extract_metrics, write_csv)
from repro.fabric.manifest import parse_manifest
from repro.fabric.plot import (PlotError, render, render_svg,
                               series_from_table)
from repro.fabric.queue import CampaignQueue
from repro.fabric.service import run_campaign_serial, work_campaign


def drained_queue(tmp_path, sub="a", values=(1, 2, 3)):
    manifest = parse_manifest({
        "name": "dbtest", "fn": "tests._fabric_jobs:scaled_metric",
        "grid": {"x": list(values)}})
    queue = CampaignQueue.submit(tmp_path / sub, manifest)
    run_campaign_serial(queue)
    return queue


class TestExtraction:
    def test_result_summary_extracted(self):
        class WithSummary:
            summary = {"ipc": 1.5, "label": "x", "count": 3}
        assert extract_metrics(WithSummary()) == {"count": 3.0,
                                                  "ipc": 1.5}

    def test_bare_numbers_and_dicts(self):
        assert extract_metrics(2) == {"value": 2.0}
        assert extract_metrics(2.5) == {"value": 2.5}
        assert extract_metrics({"a": 1, "b": "text", "c": True}) \
            == {"a": 1.0}
        assert extract_metrics("nothing") == {}

    def test_encode_value_dataclass_and_unjsonable(self):
        from repro.experiments.common import Result
        encoded = encode_value(Result(experiment="e", title="t",
                                      headers=["h"], rows=[[1]]))
        assert json.loads(encoded)["title"] == "t"
        assert encode_value(object()) is None


class TestMergeAndFingerprint:
    def test_merge_then_query_table(self, tmp_path):
        queue = drained_queue(tmp_path)
        with ResultsDb(tmp_path / "r.sqlite") as db:
            merged = db.merge_queue(queue)
            assert merged == 3
            headers, rows = db.table(queue.campaign_id)
            assert headers[:5] == ["job_index", "job_id", "seed",
                                   "scale", "status"]
            assert "scaled" in headers and "x" in headers
            scaled_at = headers.index("scaled")
            assert [row[scaled_at] for row in rows] == [10.0, 20.0, 30.0]

    def test_worker_topology_is_fingerprint_identical(self, tmp_path):
        serial = drained_queue(tmp_path, "serial")
        manifest = parse_manifest({
            "name": "dbtest", "fn": "tests._fabric_jobs:scaled_metric",
            "grid": {"x": [1, 2, 3]}})
        pooled = CampaignQueue.submit(tmp_path / "pooled", manifest)
        work_campaign(pooled, jobs=2, pool=True)
        with ResultsDb(tmp_path / "a.sqlite") as db:
            db.merge_queue(serial)
            serial_print = db.fingerprint(serial.campaign_id)
        with ResultsDb(tmp_path / "b.sqlite") as db:
            db.merge_queue(pooled)
            pooled_print = db.fingerprint(pooled.campaign_id)
        assert serial_print == pooled_print

    def test_fingerprint_ignores_provenance_only(self, tmp_path):
        queue = drained_queue(tmp_path)
        index = queue.job_indices()[0]
        record = queue.load_result(index)
        with ResultsDb(tmp_path / "r.sqlite") as db:
            db.merge_queue(queue)
            baseline = db.fingerprint(queue.campaign_id)

            # provenance churn (steals, retries, other workers) must
            # not move the fingerprint...
            record.update(worker="someone-else", attempts=7,
                          duration=99.0, lease_generation=4)
            queue.results_dir.joinpath(f"{index:06d}.json").write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8")
            db.merge_queue(queue)
            assert db.fingerprint(queue.campaign_id) == baseline

            # ...but any deterministic field must.
            record["metrics"] = dict(record["metrics"], scaled=999.0)
            queue.results_dir.joinpath(f"{index:06d}.json").write_text(
                json.dumps(record, sort_keys=True), encoding="utf-8")
            db.merge_queue(queue)
            assert db.fingerprint(queue.campaign_id) != baseline

    def test_remerge_is_idempotent(self, tmp_path):
        queue = drained_queue(tmp_path)
        with ResultsDb(tmp_path / "r.sqlite") as db:
            db.merge_queue(queue)
            first = db.fingerprint(queue.campaign_id)
            db.merge_queue(queue)
            assert db.fingerprint(queue.campaign_id) == first
            _, rows = db.query("SELECT COUNT(*) FROM results")
            assert rows[0][0] == 3


class TestQuery:
    def test_sql_over_metrics(self, tmp_path):
        queue = drained_queue(tmp_path)
        with ResultsDb(tmp_path / "r.sqlite") as db:
            db.merge_queue(queue)
            headers, rows = db.query(
                "SELECT name, SUM(value) FROM metrics "
                "WHERE name = 'scaled' GROUP BY name")
            assert rows == [("scaled", 60.0)]

    def test_mutation_refused(self, tmp_path):
        with ResultsDb(tmp_path / "r.sqlite") as db:
            with pytest.raises(DbError, match="only SELECT"):
                db.query("DELETE FROM results")
            with pytest.raises(DbError):
                db.query("DROP TABLE results")

    def test_unknown_campaign_raises(self, tmp_path):
        with ResultsDb(tmp_path / "r.sqlite") as db:
            with pytest.raises(DbError, match="not in this database"):
                db.table("nope")

    def test_stored_result_rows_round_trip(self, tmp_path):
        manifest = parse_manifest({
            "name": "figs", "fn": "tests._fabric_jobs:tabular_result",
            "fixed": {"name": "fig_x"}, "grid": {"seed": [4]}})
        queue = CampaignQueue.submit(tmp_path / "q", manifest)
        run_campaign_serial(queue)
        with ResultsDb(tmp_path / "r.sqlite") as db:
            db.merge_queue(queue)
            headers, rows, title = db.stored_result_rows(
                queue.campaign_id, "figs:00000")
            assert headers == ["name", "point", "value"]
            assert rows == [["fig_x", 4, 8.0], ["fig_x", 5, 10.0],
                            ["fig_x", 6, 12.0]]
            assert title == "table for fig_x"
            with pytest.raises(DbError, match="no stored value"):
                db.stored_result_rows(queue.campaign_id, "missing")


class TestCsvAndPlot:
    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        text = write_csv(["a", "b"], [[1, None], ["x,y", 2.5]], path)
        assert path.read_text(encoding="utf-8") == text
        assert text.splitlines() == ["a,b", "1,", '"x,y",2.5']

    def test_series_from_table_groups_and_sorts(self):
        headers = ["x", "y", "kind", "status"]
        rows = [[2, 20.0, "a", "done"], [1, 10.0, "a", "done"],
                [1, 5.0, "b", "done"], [3, None, "a", "pending"]]
        series = series_from_table(headers, rows, x="x", y="y",
                                   group_by="kind")
        assert series == {"kind=a": [(1.0, 10.0), (2.0, 20.0)],
                          "kind=b": [(1.0, 5.0)]}

    def test_series_errors(self):
        with pytest.raises(PlotError, match="no column"):
            series_from_table(["x"], [[1]], x="x", y="y")
        with pytest.raises(PlotError, match="no numeric"):
            series_from_table(["x", "y"], [["a", None]], x="x", y="y")

    def test_svg_renders_axes_series_legend(self):
        svg = render_svg({"s1": [(0.0, 1.0), (1.0, 2.0)],
                          "s2": [(0.0, 2.0), (1.0, 1.0)]},
                         title="T & co", x_label="x", y_label="y")
        assert svg.startswith("<svg")
        assert svg.count("<path") == 2
        assert "T &amp; co" in svg
        assert "s1" in svg and "s2" in svg

    def test_flat_series_has_nondegenerate_axis(self):
        svg = render_svg({"flat": [(1.0, 5.0), (2.0, 5.0)]},
                         title="t", x_label="x", y_label="y")
        assert "<path" in svg

    def test_render_falls_back_to_svg_without_matplotlib(self, tmp_path):
        out = render({"s": [(0.0, 0.0), (1.0, 1.0)]}, "t", "x", "y",
                     tmp_path / "fig.png")
        # either matplotlib produced the png or the svg fallback fired
        assert out.exists()
        assert out.suffix in (".png", ".svg")
