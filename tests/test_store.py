"""Tests for experiment-result persistence and diffing."""

import pytest

from repro.experiments.common import Result
from repro.experiments.store import (diff_summaries, load_metadata,
                                     load_result, save_all, save_result)


def sample_result(**summary):
    return Result(experiment="fig99", title="Sample",
                  headers=["a", "b"], rows=[["x", 1.0]],
                  notes=["n"], summary=summary or {"metric": 1.0})


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        result = sample_result(metric=2.5)
        path = save_result(result, tmp_path / "fig99.json",
                           metadata={"seed": 1, "scale": "smoke"})
        loaded = load_result(path)
        assert loaded.experiment == "fig99"
        assert loaded.summary == {"metric": 2.5}
        assert loaded.rows == [["x", 1.0]]
        assert load_metadata(path) == {"seed": 1, "scale": "smoke"}

    def test_directories_created(self, tmp_path):
        path = save_result(sample_result(),
                           tmp_path / "deep" / "nested" / "r.json")
        assert path.exists()

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "result": {}}')
        with pytest.raises(ValueError):
            load_result(path)

    def test_save_all(self, tmp_path):
        results = [Result(experiment=f"e{i}", title="t", headers=["h"],
                          rows=[], summary={"v": float(i)})
                   for i in range(3)]
        paths = save_all(results, tmp_path / "run1")
        assert len(paths) == 3
        assert (tmp_path / "run1" / "e1.json").exists()

    def test_loaded_result_renders(self, tmp_path):
        path = save_result(sample_result(), tmp_path / "r.json")
        text = load_result(path).render()
        assert "Sample" in text


class TestDiff:
    def test_no_change_within_tolerance(self):
        a = sample_result(metric=1.00)
        b = sample_result(metric=1.01)
        records = diff_summaries(a, b, tolerance=0.02)
        assert not records[0]["significant"]

    def test_significant_change_flagged(self):
        a = sample_result(metric=1.0)
        b = sample_result(metric=1.5)
        records = diff_summaries(a, b, tolerance=0.02)
        assert records[0]["significant"]
        assert records[0]["relative_change"] == pytest.approx(0.5)

    def test_added_and_removed_metrics(self):
        a = sample_result(old_metric=1.0)
        b = sample_result(new_metric=2.0)
        records = diff_summaries(a, b)
        by_name = {r["metric"]: r for r in records}
        assert by_name["old_metric"]["after"] is None
        assert by_name["new_metric"]["before"] is None
        assert all(r["significant"] for r in records)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_summaries(sample_result(), sample_result(),
                           tolerance=-0.1)

    def test_zero_baseline_handled(self):
        a = sample_result(metric=0.0)
        b = sample_result(metric=1.0)
        records = diff_summaries(a, b)
        assert records[0]["significant"]


class TestDiffResultDirs:
    """Directory-level diffing behind the --diff CLI."""

    def save(self, directory, name, summary):
        from repro.experiments.common import Result
        from repro.experiments.store import save_result

        save_result(Result(experiment=name, title="t", headers=["h"],
                           rows=[], summary=dict(summary)),
                    directory / f"{name}.json")

    def test_reports_common_and_one_sided_files(self, tmp_path):
        from repro.experiments.store import diff_result_dirs

        before, after = tmp_path / "before", tmp_path / "after"
        self.save(before, "shared", {"m": 1.0})
        self.save(after, "shared", {"m": 1.5})
        self.save(before, "gone", {"m": 1.0})
        self.save(after, "new", {"m": 1.0})
        report = diff_result_dirs(before, after)
        assert set(report["experiments"]) == {"shared"}
        assert report["only_before"] == ["gone"]
        assert report["only_after"] == ["new"]
        (record,) = report["experiments"]["shared"]
        assert record["metric"] == "m"
        assert record["significant"]

    def test_tolerance_passthrough(self, tmp_path):
        from repro.experiments.store import diff_result_dirs

        before, after = tmp_path / "before", tmp_path / "after"
        self.save(before, "e", {"m": 1.0})
        self.save(after, "e", {"m": 1.05})
        loose = diff_result_dirs(before, after, tolerance=0.10)
        tight = diff_result_dirs(before, after, tolerance=0.01)
        assert not loose["experiments"]["e"][0]["significant"]
        assert tight["experiments"]["e"][0]["significant"]
