"""ProgressReporter ETA math, including the degenerate-shape guards."""

import io

from repro.runner.progress import ProgressReporter, _format_seconds


class TestEtaGuards:
    def make(self, total=4, jobs=1):
        return ProgressReporter(total=total, jobs=jobs, enabled=False)

    def test_no_jobs_done_yet_is_unknown(self):
        assert self.make().eta_seconds() is None

    def test_all_cache_hits_is_unknown_not_zero_division(self):
        reporter = self.make()
        reporter.job_done(cached=True)
        reporter.job_done(cached=True)
        # remaining > 0 but zero *computed* jobs: mean is undefined
        assert reporter._computed_jobs == 0
        assert reporter.eta_seconds() is None

    def test_zero_observed_rate_is_unknown(self):
        reporter = self.make()
        reporter.job_done(duration=0.0)
        # one computed job at 0s/job: extrapolating promises eta 0 for
        # work that has not run, so the estimate stays unknown
        assert reporter.eta_seconds() is None

    def test_finished_sweep_is_zero(self):
        reporter = self.make(total=1)
        reporter.job_done(duration=2.0)
        assert reporter.eta_seconds() == 0.0

    def test_empty_sweep_is_zero(self):
        assert self.make(total=0).eta_seconds() == 0.0

    def test_mean_rate_scaled_by_workers(self):
        reporter = self.make(total=5, jobs=2)
        reporter.job_done(duration=4.0)
        # 4 remaining x 4s/job / 2 workers
        assert reporter.eta_seconds() == 8.0

    def test_negative_duration_clamped(self):
        reporter = self.make()
        reporter.job_done(duration=-5.0)
        assert reporter.eta_seconds() is None  # clamped to 0 -> zero rate

    def test_mixed_cached_and_computed(self):
        reporter = self.make(total=4)
        reporter.job_done(cached=True)
        reporter.job_done(duration=3.0)
        # mean from computed jobs only; 2 remaining x 3s
        assert reporter.eta_seconds() == 6.0


class TestRendering:
    def test_progress_line_without_eta(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, label="t", enabled=True,
                                    min_interval=0.0, stream=stream)
        reporter.job_done(cached=True)
        line = stream.getvalue()
        assert "1/2 done" in line
        assert "eta" not in line  # unknown ETA renders as no ETA

    def test_progress_line_with_eta(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=3, label="t", enabled=True,
                                    min_interval=0.0, stream=stream)
        reporter.job_done(duration=60.0)
        assert "eta" in stream.getvalue()

    def test_format_seconds(self):
        assert _format_seconds(5.4) == "5s"
        assert _format_seconds(61) == "1m01s"
        assert _format_seconds(3_660) == "1h01m"
        assert _format_seconds(-3) == "0s"
