"""Tests for the experiment harness (registry + cheap smoke runs).

The heavier experiments are exercised by the benchmark suite; here we run
the fast ones end-to-end and validate the harness plumbing for the rest.
"""

import pytest

from repro.experiments import REGISTRY, Result, SCALES, get_scale, \
    run_experiment
from repro.experiments.common import (benchmarks_for,
                                      conventional_schedulers,
                                      measure_alone, mix_bin_spec,
                                      run_scheduler, slowdowns_against,
                                      targeted_seeds)
from repro.experiments import fig02_distributions
from repro.sim.system import SCALED_MULTI_CONFIG
from repro.workloads.mixes import workload_traces


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {"fig02", "fig11", "fig12", "fig13", "fig14", "fig15",
                    "fig16", "fig17", "fig18", "sec4h", "sec4i",
                    "hw_cost"}
        assert expected <= set(REGISTRY)

    def test_ablations_registered(self):
        assert {"ablation_methods", "ablation_replenish", "ablation_fifo",
                "ablation_optimizer",
                "ablation_bin_length"} <= set(REGISTRY)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_scales(self):
        assert set(SCALES) == {"smoke", "small", "paper"}
        assert get_scale("smoke").run_cycles \
            < get_scale("paper").run_cycles
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_get_scale_passthrough(self):
        scale = get_scale("smoke")
        assert get_scale(scale) is scale


class TestResultRendering:
    def test_render_contains_rows_and_summary(self):
        result = Result(experiment="x", title="Title",
                        headers=["a", "b"], rows=[["r", 1.25]],
                        notes=["a note"], summary={"metric": 2.0})
        text = result.render()
        assert "Title" in text
        assert "1.250" in text
        assert "note: a note" in text
        assert "metric = 2.0000" in text


class TestHarnessHelpers:
    def test_conventional_scheduler_registry(self):
        names = set(conventional_schedulers())
        assert names == {"FR-FCFS", "FairQueue", "TCM", "FST", "MemGuard",
                         "MISE"}

    def test_run_scheduler_unknown_name(self):
        with pytest.raises(KeyError):
            run_scheduler("bogus", workload_traces(1),
                          SCALED_MULTI_CONFIG, 1000)

    def test_measure_alone_and_slowdowns(self):
        traces = workload_traces(1)[:2]
        alone = measure_alone(traces, SCALED_MULTI_CONFIG, 10_000)
        assert len(alone) == 2
        stats = run_scheduler("FR-FCFS", traces, SCALED_MULTI_CONFIG,
                              10_000)
        slowdowns = slowdowns_against(alone, stats)
        assert all(s > 0 for s in slowdowns)

    def test_mix_bin_spec_scales_span(self):
        assert mix_bin_spec(4).interval_length == 10
        assert mix_bin_spec(8).interval_length == 24

    def test_benchmarks_for_subset(self):
        scale = get_scale("smoke")
        subset = benchmarks_for(scale, ("mcf", "gcc", "libquantum"))
        assert set(subset) <= {"mcf", "gcc", "libquantum"}
        full = benchmarks_for(get_scale("paper"), ("mcf", "gcc"))
        assert full == ["mcf", "gcc"]

    def test_targeted_seeds_shape(self):
        from repro.core.bins import BinSpec
        from repro.sched.base import FrFcfsScheduler
        from repro.tuning.objectives import (FitnessEvaluator,
                                             throughput_objective)
        traces = workload_traces(1)
        evaluator = FitnessEvaluator(
            traces=traces, system_config=SCALED_MULTI_CONFIG,
            run_cycles=10_000, objective=throughput_objective,
            scheduler_factory=lambda n: FrFcfsScheduler(n))
        evaluator.measure_alone()
        seeds = targeted_seeds(evaluator, BinSpec())
        assert all(len(genome) == len(traces) for genome in seeds)
        # Each targeted seed mixes generous and capped configurations.
        for genome in seeds:
            totals = {config.total_credits for config in genome}
            assert len(totals) >= 2


class TestCheapExperiments:
    def test_hw_cost(self):
        result = run_experiment("hw_cost")
        assert result.summary["default_area_mm2"] == pytest.approx(0.0035)
        assert result.summary["default_core_fraction"] <= 0.009 + 1e-9
        # Area grows monotonically with bin count.
        areas = [row[3] for row in result.rows]
        assert areas == sorted(areas)

    def test_fig02_reproduces_request_reduction(self):
        result = run_experiment("fig02")
        for benchmark in fig02_distributions.BENCHMARKS:
            key = f"{benchmark}_request_ratio_large_over_small"
            assert result.summary[key] < 1.0

    def test_fig02_series_accessor(self):
        series = fig02_distributions.series("astar",
                                            fig02_distributions.SMALL_LLC)
        assert len(series) > 0
        assert all(count >= 0 for _, count in series)

    def test_ablation_replenish_reset_beats_drip_on_bursts(self):
        result = run_experiment("ablation_replenish")
        assert result.summary["reset_work"] \
            >= 0.95 * result.summary["drip_work"]

    def test_ablation_bin_length_larger_L_throttles_more(self):
        result = run_experiment("ablation_bin_length")
        assert result.summary["work_L40"] < result.summary["work_L5"]

    def test_sec4h_shared_beats_per_thread(self):
        result = run_experiment("sec4h")
        for benchmark in ("x264", "ferret"):
            assert result.summary[f"{benchmark}_shared_over_per_thread"] \
                > 0.5  # sanity floor; magnitude recorded in EXPERIMENTS.md
