"""Unit tests for metrics: slowdowns, distributions, reports."""

import pytest

from repro.metrics.interarrival import InterarrivalDistribution
from repro.metrics.report import (format_bar_chart, format_series,
                                  format_table)
from repro.metrics.slowdown import (average_slowdown, geometric_mean,
                                    max_slowdown, mise_online_slowdown,
                                    slowdown_from_work,
                                    slowdowns_from_rates, unfairness)
from repro.sim.stats import CoreStats


class TestSlowdowns:
    def test_slowdown_from_work(self):
        assert slowdown_from_work(100.0, 50.0) == pytest.approx(2.0)

    def test_slowdown_guards_zero_shared(self):
        assert slowdown_from_work(100.0, 0.0) > 1e9

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            slowdown_from_work(-1.0, 10.0)

    def test_average_and_max(self):
        slowdowns = [1.0, 2.0, 3.0]
        assert average_slowdown(slowdowns) == pytest.approx(2.0)
        assert max_slowdown(slowdowns) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_slowdown([])
        with pytest.raises(ValueError):
            max_slowdown([])

    def test_unfairness(self):
        assert unfairness([1.0, 4.0]) == pytest.approx(4.0)

    def test_slowdowns_from_rates(self):
        result = slowdowns_from_rates([10.0, 20.0], [5.0, 10.0])
        assert result == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_rates_length_mismatch(self):
        with pytest.raises(ValueError):
            slowdowns_from_rates([1.0], [1.0, 2.0])

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_mise_online_slowdown_monotone_in_ratio(self):
        low = mise_online_slowdown(1.0, 1.0, 0.2)
        high = mise_online_slowdown(4.0, 1.0, 0.2)
        assert high > low

    def test_mise_online_slowdown_monotone_in_stall(self):
        low = mise_online_slowdown(2.0, 1.0, 0.1)
        high = mise_online_slowdown(2.0, 1.0, 0.9)
        assert high > low

    def test_mise_online_slowdown_validates(self):
        with pytest.raises(ValueError):
            mise_online_slowdown(1.0, 1.0, 1.5)
        with pytest.raises(ValueError):
            mise_online_slowdown(1.0, 1.0, 0.5, alpha=2.0)


class TestInterarrivalDistribution:
    def make(self, counts):
        return InterarrivalDistribution(counts=counts, bucket_width=10)

    def test_total_requests(self):
        assert self.make({0: 3, 2: 1}).total_requests == 4

    def test_frequency(self):
        dist = self.make({0: 3, 1: 1})
        assert dist.frequency(0) == pytest.approx(0.75)
        assert dist.frequency(5) == 0.0

    def test_mean_uses_bucket_centres(self):
        dist = self.make({0: 1, 1: 1})  # centres 5 and 15
        assert dist.mean() == pytest.approx(10.0)

    def test_empty_distribution(self):
        dist = self.make({})
        assert dist.mean() == 0.0
        assert dist.burstiness() == 0.0

    def test_periodic_traffic_zero_burstiness(self):
        dist = self.make({3: 100})
        assert dist.burstiness() == pytest.approx(0.0)

    def test_bimodal_traffic_is_bursty(self):
        uniform = self.make({5: 100})
        bimodal = self.make({0: 90, 50: 10})
        assert bimodal.burstiness() > uniform.burstiness()

    def test_to_series_fills_gaps(self):
        dist = self.make({0: 2, 3: 1})
        series = dist.to_series()
        assert series == [(0, 2), (10, 0), (20, 0), (30, 1)]

    def test_truncated_clamps_tail(self):
        dist = self.make({0: 1, 5: 2, 9: 3})
        clamped = dist.truncated(4)
        assert clamped.counts == {0: 1, 4: 5}
        assert clamped.total_requests == dist.total_requests

    def test_from_core_stats_streams(self):
        stats = CoreStats(core_id=0)
        stats.record_interarrival(12)
        stats.record_mem_interarrival(40)
        shaper = InterarrivalDistribution.from_core_stats(stats,
                                                          stream="shaper")
        memory = InterarrivalDistribution.from_core_stats(stats,
                                                          stream="memory")
        assert shaper.counts == {1: 1}
        assert memory.counts == {4: 1}
        with pytest.raises(ValueError):
            InterarrivalDistribution.from_core_stats(stats, stream="bogus")


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.500" in text
        assert "bb" in text

    def test_format_series(self):
        text = format_series("s", [(1, 2.0), (2, 3.0)], "x", "y")
        assert "1: 2.0000" in text

    def test_format_bar_chart(self):
        text = format_bar_chart("chart", ["a", "b"], [1.0, 2.0])
        assert text.count("|") == 2

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(ValueError):
            format_bar_chart("chart", ["a"], [1.0, 2.0])


class TestSpeedupMetrics:
    def test_weighted_speedup_no_interference(self):
        from repro.metrics.slowdown import weighted_speedup
        assert weighted_speedup([1.0, 1.0, 1.0, 1.0]) == pytest.approx(4.0)

    def test_weighted_speedup_decreases_with_slowdown(self):
        from repro.metrics.slowdown import weighted_speedup
        assert weighted_speedup([2.0, 2.0]) < weighted_speedup([1.5, 1.5])

    def test_harmonic_mean_speedup(self):
        from repro.metrics.slowdown import harmonic_mean_speedup
        assert harmonic_mean_speedup([1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_mean_speedup([2.0, 2.0]) == pytest.approx(0.5)

    def test_harmonic_penalises_imbalance(self):
        from repro.metrics.slowdown import harmonic_mean_speedup
        balanced = harmonic_mean_speedup([2.0, 2.0])
        skewed = harmonic_mean_speedup([1.0, 3.0])
        assert balanced == pytest.approx(0.5)
        assert skewed == pytest.approx(0.5)
        # Harmonic mean of speedups differs once slowdowns multiply out.
        assert harmonic_mean_speedup([1.0, 4.0]) < \
            harmonic_mean_speedup([2.0, 2.0]) * 1.3

    def test_validation(self):
        from repro.metrics.slowdown import (harmonic_mean_speedup,
                                            weighted_speedup)
        with pytest.raises(ValueError):
            weighted_speedup([])
        with pytest.raises(ValueError):
            weighted_speedup([0.0])
        with pytest.raises(ValueError):
            harmonic_mean_speedup([-1.0])
