"""Unit tests for the workload substrate."""

import pytest

from repro.workloads.benchmarks import (PARSEC_BENCHMARKS,
                                        SERVER_BENCHMARKS, SPEC_BENCHMARKS,
                                        available_benchmarks, profile,
                                        trace_for)
from repro.workloads.generator import (BenchmarkProfile, PhaseProfile,
                                       SyntheticTrace, thread_traces)
from repro.workloads.mixes import (EIGHT_PROGRAM_WORKLOADS,
                                   FOUR_PROGRAM_WORKLOADS, workload_names,
                                   workload_traces)
from repro.workloads.trace import (ListTrace, TraceEvent, bursty_trace,
                                   uniform_trace)


class TestTraceHelpers:
    def test_uniform_trace_shape(self):
        trace = uniform_trace(count=5, gap=7, stride=64)
        events = list(trace)
        assert len(events) == 5
        assert all(e.work == 7 for e in events)
        addresses = [e.address for e in events]
        assert addresses == [i * 64 for i in range(5)]

    def test_uniform_trace_invalid(self):
        with pytest.raises(ValueError):
            uniform_trace(count=-1, gap=0)

    def test_bursty_trace_two_gap_populations(self):
        trace = bursty_trace(bursts=3, burst_len=4, burst_gap=2,
                             idle_gap=100)
        gaps = {e.work for e in trace}
        assert gaps == {2, 100}

    def test_list_trace_reiterable(self):
        trace = ListTrace([TraceEvent(1, 0, False)])
        assert list(trace) == list(trace)


class TestPhaseProfileValidation:
    def test_defaults_valid(self):
        PhaseProfile()

    @pytest.mark.parametrize("kwargs", [
        dict(length=0),
        dict(working_set=32),
        dict(sequential_fraction=1.5),
        dict(write_fraction=-0.1),
        dict(hot_access_fraction=2.0),
        dict(hot_set_fraction=0.0),
    ])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            PhaseProfile(**kwargs)

    def test_benchmark_profile_needs_phases(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="empty", phases=())


class TestSyntheticTrace:
    def test_deterministic_replay(self):
        trace = trace_for("mcf", seed=7)
        assert list(trace) == list(trace)

    def test_different_seeds_differ(self):
        a = list(trace_for("mcf", seed=1))
        b = list(trace_for("mcf", seed=2))
        assert a != b

    def test_different_benchmarks_differ(self):
        a = list(trace_for("mcf", seed=1))
        b = list(trace_for("gcc", seed=1))
        assert a != b

    def test_length_matches_profile(self):
        trace = trace_for("sjeng")
        assert len(list(trace)) == len(trace) \
            == profile("sjeng").total_events

    def test_addresses_within_benchmark_region(self):
        bench = profile("gcc")
        region = 1 << 26
        for event in trace_for("gcc"):
            assert bench.base_address <= event.address \
                < bench.base_address + region

    def test_benchmarks_have_disjoint_regions(self):
        bases = {profile(name).base_address
                 for name in available_benchmarks()}
        assert len(bases) == len(available_benchmarks())

    def test_write_fraction_roughly_respected(self):
        events = list(trace_for("bzip"))
        write_rate = sum(e.is_write for e in events) / len(events)
        assert 0.15 < write_rate < 0.55

    def test_streaming_benchmark_mostly_sequential(self):
        events = list(trace_for("libquantum"))
        seq = sum(1 for a, b in zip(events, events[1:])
                  if b.address == a.address + 64)
        assert seq / len(events) > 0.6

    def test_bursty_benchmark_has_heavy_gap_tail(self):
        events = list(trace_for("bhm_mail"))
        gaps = sorted(e.work for e in events)
        p50 = gaps[len(gaps) // 2]
        p95 = gaps[int(len(gaps) * 0.95)]
        assert p95 > 10 * max(1, p50)


class TestRegistry:
    def test_all_suites_registered(self):
        names = set(available_benchmarks())
        assert set(SPEC_BENCHMARKS) <= names
        assert set(PARSEC_BENCHMARKS) <= names
        assert set(SERVER_BENCHMARKS) <= names

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            profile("nonexistent")

    def test_profiles_have_positive_mlp(self):
        for name in available_benchmarks():
            assert profile(name).mlp >= 1


class TestMixes:
    def test_table_iii_sizes(self):
        for workload_id in FOUR_PROGRAM_WORKLOADS:
            assert len(workload_names(workload_id)) == 4
        for workload_id in EIGHT_PROGRAM_WORKLOADS:
            assert len(workload_names(workload_id)) == 8

    def test_workload_1_composition(self):
        assert set(workload_names(1)) == {"gcc", "libquantum", "bzip",
                                          "mcf"}

    def test_workload_traces_match_names(self):
        traces = workload_traces(2)
        names = workload_names(2)
        assert [t.profile.name for t in traces] == names

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            workload_names(99)


class TestThreadTraces:
    def test_thread_count(self):
        traces = thread_traces(profile("x264"), 4)
        assert len(traces) == 4

    def test_threads_share_address_region(self):
        traces = thread_traces(profile("ferret"), 2)
        bases = {t.profile.base_address for t in traces}
        assert len(bases) == 1

    def test_threads_phase_staggered(self):
        traces = thread_traces(profile("ferret"), 3)
        first_phases = [t.profile.phases[0] for t in traces]
        assert len(set(first_phases)) > 1

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            thread_traces(profile("x264"), 0)
