"""Reproducibility tests: identical seeds give identical results.

Determinism is a hard requirement for a reproduction repository -- the
numbers in EXPERIMENTS.md must be regenerable bit-for-bit.  These tests
re-run the *fast* experiments twice and require exact summary equality,
and check that seeds actually matter where they should.
"""

import pytest

from repro.experiments import run_experiment


FAST_EXPERIMENTS = ["fig02", "sec4h", "hw_cost", "ablation_replenish",
                    "ablation_bin_length"]


@pytest.mark.parametrize("name", FAST_EXPERIMENTS)
def test_experiment_is_deterministic(name):
    first = run_experiment(name, scale="smoke", seed=1)
    second = run_experiment(name, scale="smoke", seed=1)
    assert first.summary == second.summary
    assert first.rows == second.rows


def test_seed_changes_workload_results():
    first = run_experiment("sec4h", scale="smoke", seed=1)
    other = run_experiment("sec4h", scale="smoke", seed=2)
    assert first.summary != other.summary


def test_ga_search_is_deterministic():
    from repro.experiments.common import (SCALED_MULTI_CONFIG, get_scale,
                                          optimize_mitts)
    from repro.workloads.mixes import workload_traces

    scale = get_scale("smoke")
    traces = workload_traces(1)

    def run():
        result, _ = optimize_mitts(traces, SCALED_MULTI_CONFIG, 20_000,
                                   "throughput", scale, seed=5)
        return (result.best_fitness,
                tuple(tuple(c.credits) for c in result.best_genome))

    assert run() == run()


def test_contracts_do_not_perturb_simulation():
    """Runtime contracts are observers only: a 4-core mix simulated with
    ``REPRO_CONTRACTS=1`` semantics must produce bit-identical statistics
    to the same mix with contracts off, and be repeatable under them."""
    from repro.analysis import contracts
    from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
    from repro.workloads.benchmarks import trace_for

    def digest():
        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2),
                            trace_for("omnetpp", seed=3),
                            trace_for("libquantum", seed=4)],
                           config=SCALED_MULTI_CONFIG)
        stats = system.run(20_000)
        return [core.snapshot() for core in stats.cores]

    baseline = digest()
    with contracts.enabled_scope():
        assert contracts.is_enabled()
        first = digest()
        second = digest()
    assert first == second, "contracts broke run-to-run determinism"
    assert first == baseline, "contracts perturbed simulation results"


def test_simulation_not_sensitive_to_wallclock():
    """Nothing in the stack may read real time: two systems built at
    different moments replay identically."""
    import time

    from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
    from repro.workloads.benchmarks import trace_for

    def run():
        system = SimSystem([trace_for("gcc"), trace_for("mcf", seed=2)],
                           config=SCALED_MULTI_CONFIG)
        stats = system.run(15_000)
        return [core.snapshot() for core in stats.cores]

    first = run()
    time.sleep(0.05)
    assert run() == first
