"""Unit tests for the calendar-queue event wheel (batched kernel).

:class:`~repro.sim.wheel.WheelEngine` must be observably identical to the
heap :class:`~repro.sim.engine.Engine`: same ``(when, seq)`` FIFO order,
same horizon semantics, same clamping, same stop/resume behaviour.  The
edge cases here target exactly the places where a bucketed wheel could
diverge from a heap -- far-future overflow parking and migration, index
wrap-around at multiples of ``SPAN``, and same-cycle ordering when direct
bucket inserts mix with migrated overflow events.
"""

import pickle
import random

import pytest

from repro.sim.engine import Engine
from repro.sim.wheel import SPAN, WheelEngine


def _record(log, name):
    return lambda: log.append(name)


def _noop():
    pass


class TestHeapParity:
    """The wheel's observable order equals the heap's, event for event."""

    def test_fuzzed_schedule_order_matches_heap(self):
        # Deterministic fuzz: mixed near/far/same-cycle/past schedules,
        # including schedules issued from inside callbacks.  Both engines
        # must produce the identical execution log.
        rng = random.Random(0xC0FFEE)
        plan = []
        for i in range(400):
            kind = rng.randrange(6)
            if kind == 0:
                when = rng.randrange(0, 64)              # dense near-term
            elif kind == 1:
                when = rng.randrange(0, 3 * SPAN)        # across wraps
            elif kind == 2:
                when = rng.randrange(5 * SPAN, 9 * SPAN)  # deep overflow
            else:
                when = rng.randrange(0, 2000)            # typical latency
            nested = rng.randrange(4) == 0
            delay = rng.randrange(0, 2 * SPAN)
            plan.append((when, i, nested, delay))

        def drive(engine):
            log = []

            def fire(tag, nested, delay):
                log.append((engine.now, tag))
                if nested:
                    engine.schedule_in(
                        delay, lambda: log.append((engine.now, -tag - 1)))

            for when, tag, nested, delay in plan:
                engine.schedule(
                    when,
                    lambda t=tag, n=nested, d=delay: fire(t, n, d))
            engine.run()
            return log

        heap_log = drive(Engine())
        wheel_log = drive(WheelEngine())
        assert wheel_log == heap_log
        assert len(wheel_log) > 400  # nested events actually fired

    def test_same_cycle_fifo_matches_heap(self):
        for engine in (Engine(), WheelEngine()):
            log = []
            for name in "abcdef":
                engine.schedule(9, _record(log, name))
            engine.run()
            assert log == list("abcdef"), type(engine).__name__

    def test_nested_same_cycle_children_run_after_peers(self):
        engine = WheelEngine()
        log = []

        def first():
            log.append("first")
            engine.schedule(5, _record(log, "child-a"))
            engine.schedule(5, _record(log, "child-b"))

        engine.schedule(5, first)
        engine.schedule(5, _record(log, "second"))
        engine.run()
        assert log == ["first", "second", "child-a", "child-b"]


class TestOverflow:
    """Far-future events park in the heap and migrate without reordering."""

    def test_far_future_event_executes_at_its_cycle(self):
        engine = WheelEngine()
        seen = []
        far = 10 * SPAN + 37
        engine.schedule(far, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [far]
        assert engine.now == far

    def test_overflow_preserves_fifo_against_direct_inserts(self):
        # Event X for cycle `far` parks in overflow (scheduled at cycle 0);
        # event Y for the same cycle is scheduled later, from within the
        # wheel window, so it lands in the bucket directly.  X must still
        # run first: migration precedes any direct insert for that cycle.
        engine = WheelEngine()
        log = []
        far = 2 * SPAN + 100
        engine.schedule(far, _record(log, "overflow-first"))
        engine.schedule(far - SPAN + 1,
                        lambda: engine.schedule(far, _record(log, "direct")))
        engine.run()
        assert log == ["overflow-first", "direct"]

    def test_idle_gap_jumps_to_overflow_head(self):
        engine = WheelEngine()
        seen = []
        engine.schedule(5, lambda: None)
        engine.schedule(4 * SPAN, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4 * SPAN]

    def test_horizon_short_of_overflow_head_stops_clean(self):
        engine = WheelEngine()
        log = []
        engine.schedule(3 * SPAN, _record(log, "far"))
        engine.run(until=SPAN)
        assert log == []
        assert engine.now == SPAN
        assert engine.pending_events == 1
        engine.run()
        assert log == ["far"]


class TestWrapAround:
    """Bucket indices wrap at SPAN; cycle values do not."""

    def test_events_straddling_wrap_run_in_time_order(self):
        engine = WheelEngine()
        log = []
        # Same bucket index (SPAN apart) forces overflow for the later
        # one; neighbours around the wrap boundary exercise the circular
        # occupancy scan in both segments.
        for when in (SPAN - 2, SPAN - 1, SPAN, SPAN + 1, 2 * SPAN - 2,
                     2 * SPAN + 3):
            engine.schedule(when, _record(log, when))
        engine.run()
        assert log == sorted(log)
        assert engine.now == 2 * SPAN + 3

    def test_repeated_full_rotations(self):
        # A self-rescheduling tick that laps the wheel several times, with
        # a stride that is not a divisor of SPAN so the index walks every
        # residue region.
        engine = WheelEngine()
        ticks = []
        stride = 1537

        def tick():
            ticks.append(engine.now)
            if len(ticks) < 20:
                engine.schedule_in(stride, tick)

        engine.schedule(0, tick)
        engine.run()
        assert ticks == [i * stride for i in range(20)]

    def test_bucket_collision_span_apart_keeps_order(self):
        engine = WheelEngine()
        log = []
        engine.schedule(7, _record(log, "near"))
        engine.schedule(7 + SPAN, _record(log, "far"))
        engine.schedule(7 + 2 * SPAN, _record(log, "farther"))
        engine.run()
        assert log == ["near", "far", "farther"]


class TestEngineContract:
    """The Engine API surface the rest of the simulator relies on."""

    def test_until_is_exclusive_and_resumable(self):
        engine = WheelEngine()
        log = []
        engine.schedule(10, _record(log, 10))
        engine.run(until=10)
        assert log == []
        assert engine.now == 10
        engine.run(until=20)
        assert log == [10]

    def test_time_advances_to_horizon_when_idle(self):
        engine = WheelEngine()
        engine.run(until=500)
        assert engine.now == 500

    def test_past_scheduling_clamps_to_now(self):
        engine = WheelEngine()
        seen = []

        def late():
            engine.schedule(engine.now - 100,
                            lambda: seen.append(engine.now))

        engine.schedule(50, late)
        engine.run()
        assert seen == [50]

    def test_stop_keeps_unexecuted_tail(self):
        engine = WheelEngine()
        log = []
        engine.schedule(3, lambda: (log.append("a"), engine.stop()))
        engine.schedule(3, _record(log, "b"))
        engine.schedule(3, _record(log, "c"))
        engine.run()
        assert log == ["a"]
        assert engine.pending_events == 2
        engine.run()
        assert log[-2:] == ["b", "c"]

    def test_max_events_counts_exactly(self):
        engine = WheelEngine()
        log = []
        for i in range(5):
            engine.schedule(i, lambda i=i: log.append(i))
        engine.run(max_events=3)
        assert log == [0, 1, 2]
        engine.run()
        assert log == [0, 1, 2, 3, 4]

    def test_pending_events_spans_wheel_and_overflow(self):
        engine = WheelEngine()
        engine.schedule(1, lambda: None)
        engine.schedule(10 * SPAN, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0

    def test_events_executed_accumulates(self):
        engine = WheelEngine()
        for i in range(7):
            engine.schedule(i, lambda: None)
        engine.run()
        assert engine.events_executed == 7

    def test_callback_exception_leaves_queue_resumable(self):
        engine = WheelEngine()
        log = []

        def boom():
            raise RuntimeError("injected")

        engine.schedule(5, _record(log, "before"))
        engine.schedule(6, boom)
        engine.schedule(7, _record(log, "after"))
        with pytest.raises(RuntimeError):
            engine.run()
        # The failing event is consumed; the tail survives.
        assert log == ["before"]
        assert engine.pending_events == 1
        engine.run()
        assert log == ["before", "after"]

    def test_pickle_roundtrip_preserves_pending_events(self):
        # Lambdas don't pickle, so use a module-level callable -- the same
        # constraint real checkpoints satisfy via bound methods of
        # picklable components.
        engine = WheelEngine()
        engine.schedule(3, _noop)
        engine.schedule(5 * SPAN, _noop)
        engine.run(until=1)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.pending_events == 2
        assert clone.now == engine.now
        clone.run()
        assert clone.now == 5 * SPAN
        assert clone.pending_events == 0
        assert clone.events_executed == 2
