"""Fault injection: every failure class the stack claims to survive.

``run_chaos_suite`` is the same harness ``python -m repro.resilience
--chaos`` runs in CI; here it executes under pytest so a regression in
any single recovery path fails with that fault's diagnostic detail.
The targeted tests below pin the runner-level policies individually:
deterministic failures are never retried, transient ones still are, and
a job killed after a periodic checkpoint *resumes* instead of restarting.
"""

import os

import pytest

from repro.resilience.chaos import ChaosOutcome, run_chaos_suite
from repro.runner import JobSpec, Runner, RunnerConfig

CHAOS_SEED = 7


class TestChaosSuite:
    def test_every_fault_class_recovers(self, tmp_path):
        outcomes = run_chaos_suite(CHAOS_SEED, str(tmp_path))
        assert len(outcomes) == 12
        failed = [outcome for outcome in outcomes if not outcome.passed]
        assert not failed, "\n".join(
            f"{outcome.fault}: {outcome.detail}" for outcome in failed)
        assert sorted(outcome.fault for outcome in outcomes) == [
            "cache-corrupt", "clock-skew", "duplicate-event", "event-bomb",
            "fabric-disk-full", "fabric-poison", "fabric-stale-read",
            "fabric-steal", "fabric-supervisor", "fabric-torn-rename",
            "starvation", "worker-kill"]

    def test_outcomes_are_plain_data(self, tmp_path):
        outcome = ChaosOutcome("example", True, "detail")
        assert outcome.passed and outcome.fault == "example"


class TestRetryPolicy:
    def test_deterministic_failure_not_retried_inline(self, tmp_path):
        spec = JobSpec.create("det", "tests._runner_jobs:raise_value_error",
                              "bad config")
        with Runner(RunnerConfig(jobs=1, retries=3, backoff=0.0)) as runner:
            sweep = runner.run([spec])
        failure = sweep["det"].failure
        assert failure is not None
        assert failure.attempts == 1  # retries were available, none used
        assert failure.error_type == "ValueError"

    def test_deterministic_failure_not_retried_in_pool(self, tmp_path):
        log = tmp_path / "attempts.log"
        det = JobSpec.create("det", "tests._runner_jobs:raise_value_error",
                             "bad config")
        ok = JobSpec.create("ok", "tests._runner_jobs:record_attempt",
                            str(log), "fine")
        with Runner(RunnerConfig(jobs=2, retries=3,
                                 backoff=0.0)) as runner:
            sweep = runner.run([det, ok])
        assert sweep["det"].failure.attempts == 1
        assert sweep["ok"].ok and sweep["ok"].value == "fine"

    def test_transient_failure_still_retried(self, tmp_path):
        counter = tmp_path / "counter"
        spec = JobSpec.create("flaky",
                              "tests._runner_jobs:fail_until_attempt",
                              str(counter), 2, "recovered")
        with Runner(RunnerConfig(jobs=1, retries=2,
                                 backoff=0.0)) as runner:
            sweep = runner.run([spec])
        assert sweep["flaky"].ok and sweep["flaky"].value == "recovered"
        assert sweep["flaky"].attempts == 2


class TestRunnerCheckpointResume:
    def test_killed_job_resumes_from_periodic_checkpoint(self, tmp_path):
        from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
        from repro.workloads.mixes import workload_traces

        cycles = 30_000
        reference = SimSystem(workload_traces(1, seed=11),
                              config=SCALED_MULTI_CONFIG)
        reference.run(cycles)
        expected = reference.stats.fingerprint()

        checkpoint_dir = tmp_path / "checkpoints"
        marker = tmp_path / "killed.marker"
        spec = JobSpec.create("sim", "tests._runner_jobs:checkpointed_sim",
                              str(marker), cycles, retries=2)
        with Runner(RunnerConfig(jobs=2, retries=2, backoff=0.01,
                                 checkpoint_dir=str(checkpoint_dir))
                    ) as runner:
            sweep = runner.run([spec])

        outcome = sweep["sim"]
        assert outcome.ok, outcome.failure
        assert outcome.attempts == 2  # killed once, succeeded on resume
        # The retry picked up the last periodic checkpoint (cycle 20_000
        # of 30_000), not cycle 0 -- and still matched bit-for-bit.
        assert outcome.value["started_from"] == 20_000
        assert outcome.value["fingerprint"] == expected
        # Success cleans the checkpoint up.
        leftovers = [name for name in os.listdir(checkpoint_dir)] \
            if checkpoint_dir.exists() else []
        assert leftovers == []

    def test_no_checkpoint_dir_means_no_ambient_path(self, tmp_path):
        spec = JobSpec.create("plain", "tests._runner_jobs:echo", "value")
        with Runner(RunnerConfig(jobs=1)) as runner:
            sweep = runner.run([spec])
        assert sweep["plain"].value == "value"
        assert list(tmp_path.iterdir()) == []


class TestFailureManifest:
    def test_partial_failure_writes_manifest(self, tmp_path, monkeypatch,
                                             capsys):
        import repro.experiments as experiments
        from repro.experiments.__main__ import main

        def exploding_experiment(scale="smoke", seed=1):
            raise ValueError("deliberately broken experiment")

        monkeypatch.setitem(experiments.REGISTRY, "chaos_boom",
                            exploding_experiment)
        save_dir = tmp_path / "results"
        status = main(["chaos_boom", "hw_cost", "--save-dir", str(save_dir),
                       "--no-progress"])
        assert status == 1

        import json
        manifest = json.loads((save_dir / "failures.json").read_text())
        assert manifest["total"] == 2
        assert manifest["failed"] == 1
        (entry,) = manifest["failures"]
        assert entry["job_id"] == "chaos_boom"
        assert entry["error_type"] == "ValueError"
        assert "deliberately broken" in entry["message"]
        assert entry["attempts"] == 1  # ValueError: deterministic, no retry
        assert len(entry["spec_hash"]) == 64

    def test_green_sweep_clears_stale_manifest(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        save_dir = tmp_path / "results"
        save_dir.mkdir()
        stale = save_dir / "failures.json"
        stale.write_text("{}")
        assert main(["hw_cost", "--save-dir", str(save_dir),
                     "--no-progress"]) == 0
        assert not stale.exists()
