"""Unit tests for ``repro.runner``: specs, cache, engine, fault model."""

import pickle

import pytest

from repro.runner import (JobSpec, ResultCache, Runner, RunnerConfig,
                          RunnerError, SpecError, callable_path,
                          code_fingerprint, content_hash, resolve_callable)

from tests import _runner_jobs

ADD_ONE = "tests._runner_jobs:add_one"
ECHO = "tests._runner_jobs:echo"


def make_runner(tmp_path=None, **overrides):
    defaults = dict(jobs=2, retries=1, backoff=0.01)
    defaults.update(overrides)
    cache = ResultCache(tmp_path, fingerprint="test") \
        if tmp_path is not None else None
    return Runner(RunnerConfig(**defaults), cache=cache)


# ----------------------------------------------------------------------
# job specs


class TestJobSpec:
    def test_callable_path_round_trips(self):
        path = callable_path(_runner_jobs.add_one)
        assert path == ADD_ONE
        assert resolve_callable(path) is _runner_jobs.add_one

    def test_non_top_level_callable_rejected(self):
        with pytest.raises(SpecError):
            callable_path(lambda x: x)

    def test_bad_path_rejected(self):
        with pytest.raises(SpecError):
            resolve_callable("tests._runner_jobs:does_not_exist")
        with pytest.raises(SpecError):
            resolve_callable("no-colon")

    def test_spec_is_picklable(self):
        spec = JobSpec.create("j", ADD_ONE, 1, seed=2, scale="smoke")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_hash_stable_across_constructions(self):
        a = JobSpec.create("a", ADD_ONE, 41, seed=1, scale="smoke")
        b = JobSpec.create("b", ADD_ONE, 41, seed=1, scale="smoke")
        # job_id is a display name, not part of the work's identity
        assert a.spec_hash() == b.spec_hash()

    def test_hash_distinguishes_work(self):
        base = JobSpec.create("j", ADD_ONE, 41, seed=1, scale="smoke")
        assert base.spec_hash() != JobSpec.create(
            "j", ADD_ONE, 42, seed=1, scale="smoke").spec_hash()
        assert base.spec_hash() != JobSpec.create(
            "j", ADD_ONE, 41, seed=2, scale="smoke").spec_hash()
        assert base.spec_hash() != JobSpec.create(
            "j", ADD_ONE, 41, seed=1, scale="paper").spec_hash()

    def test_kwarg_order_is_canonical(self):
        a = content_hash({"b": 1, "a": 2})
        b = content_hash({"a": 2, "b": 1})
        assert a == b

    def test_sets_rejected(self):
        with pytest.raises(SpecError):
            content_hash({1, 2, 3})

    def test_dataclasses_and_namedtuples_hashable(self):
        from repro.core.bins import BinConfig
        from repro.workloads.trace import TraceEvent

        h1 = content_hash([BinConfig.unlimited(), TraceEvent(1, 64, False)])
        h2 = content_hash([BinConfig.unlimited(), TraceEvent(1, 64, False)])
        assert h1 == h2
        assert h1 != content_hash([BinConfig.unlimited(),
                                   TraceEvent(2, 64, False)])


# ----------------------------------------------------------------------
# cache


class TestResultCache:
    def spec(self, **overrides):
        fields = dict(job_id="j", fn=ADD_ONE, args=(1,), seed=1,
                      scale="smoke")
        fields.update(overrides)
        return JobSpec.create(fields.pop("job_id"), fields.pop("fn"),
                              *fields.pop("args"), **fields)

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        spec = self.spec()
        assert cache.load(spec) is None
        cache.store(spec, {"answer": 42})
        hit = cache.load(spec)
        assert hit is not None and hit.value == {"answer": 42}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_none_value_is_a_hit(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        spec = self.spec()
        cache.store(spec, None)
        hit = cache.load(spec)
        assert hit is not None and hit.value is None

    def test_miss_on_changed_seed_scale_and_fingerprint(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        spec = self.spec()
        cache.store(spec, 1)
        assert cache.load(self.spec(seed=2)) is None
        assert cache.load(self.spec(scale="paper")) is None
        other_code = ResultCache(tmp_path, fingerprint="g")
        assert other_code.load(spec) is None
        # and the original still hits
        assert cache.load(spec).value == 1

    def test_corrupted_entry_discarded_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        spec = self.spec()
        path = cache.store(spec, "precious")
        path.write_bytes(path.read_bytes()[:20])  # truncate mid-payload
        assert cache.load(spec) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # evidence-free garbage is removed
        cache.store(spec, "precious")
        assert cache.load(spec).value == "precious"

    def test_garbage_entry_discarded(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        spec = self.spec()
        path = cache.store(spec, "x")
        path.write_bytes(b"not a cache entry at all")
        assert cache.load(spec) is None
        assert cache.stats.corrupt == 1

    def test_unpicklable_value_skipped_gracefully(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        assert cache.store(self.spec(), lambda: None) is None
        assert cache.load(self.spec()) is None

    def test_live_fingerprint_changes_with_source(self, tmp_path):
        from repro.runner import fingerprint_tree

        (tmp_path / "a.py").write_text("x = 1\n")
        before = fingerprint_tree(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert fingerprint_tree(tmp_path) != before
        assert len(code_fingerprint()) == 64


# ----------------------------------------------------------------------
# engine: happy path + determinism of assembly


class TestRunnerExecution:
    def test_serial_map_in_order(self):
        with make_runner(jobs=1) as runner:
            assert runner.map(ADD_ONE, [(i,) for i in range(5)]) \
                == [1, 2, 3, 4, 5]

    def test_parallel_map_matches_serial(self):
        arguments = [(i,) for i in range(8)]
        with make_runner(jobs=1) as serial:
            expected = serial.map(ADD_ONE, arguments)
        with make_runner(jobs=2) as parallel:
            assert parallel.map(ADD_ONE, arguments) == expected

    def test_results_keyed_by_job_id_not_completion(self):
        # Later-submitted jobs finish first (the first job sleeps), but
        # the assembly must stay in submission order.
        specs = [JobSpec.create("slow", "tests._runner_jobs:"
                                "sleep_then_return", 0.4, "slow-value")] \
            + [JobSpec.create(f"fast{i}", ECHO, i) for i in range(3)]
        with make_runner(jobs=2) as runner:
            sweep = runner.run(specs)
        assert [o.job_id for o in sweep] \
            == ["slow", "fast0", "fast1", "fast2"]
        assert [o.value for o in sweep] == ["slow-value", 0, 1, 2]

    def test_duplicate_job_ids_rejected(self):
        specs = [JobSpec.create("same", ECHO, 1),
                 JobSpec.create("same", ECHO, 2)]
        with make_runner() as runner, pytest.raises(SpecError):
            runner.run(specs)

    def test_inline_runs_in_this_process(self):
        import os

        with make_runner(jobs=4) as runner:
            sweep = runner.run(
                [JobSpec.create("pid", "os:getpid")], inline=True)
        assert sweep["pid"].value == os.getpid()


# ----------------------------------------------------------------------
# engine: fault model


class TestRunnerFaults:
    def test_failure_is_structured_and_non_fatal(self):
        specs = [JobSpec.create("ok", ADD_ONE, 1),
                 JobSpec.create("bad", "tests._runner_jobs:always_fails",
                                "kaput"),
                 JobSpec.create("ok2", ADD_ONE, 2)]
        with make_runner(retries=1) as runner:
            sweep = runner.run(specs)
        assert sweep["ok"].value == 2 and sweep["ok2"].value == 3
        failure = sweep["bad"].failure
        assert failure is not None
        assert failure.kind == "error"
        assert failure.error_type == "RuntimeError"
        assert "kaput" in failure.message
        assert failure.attempts == 2  # first try + one retry
        assert "always_fails" in failure.traceback

    def test_values_raises_on_failure(self):
        with make_runner(retries=0) as runner:
            sweep = runner.run([JobSpec.create(
                "bad", "tests._runner_jobs:always_fails", "nope")])
        with pytest.raises(RunnerError):
            sweep.values()

    def test_retry_recovers_flaky_job(self, tmp_path):
        counter = tmp_path / "attempts"
        spec = JobSpec.create("flaky",
                              "tests._runner_jobs:fail_until_attempt",
                              str(counter), 2, "recovered")
        with make_runner(retries=2) as runner:
            sweep = runner.run([spec])
        outcome = sweep["flaky"]
        assert outcome.ok and outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_timeout_reported_and_retried(self):
        spec = JobSpec.create("hang",
                              "tests._runner_jobs:sleep_then_return",
                              30.0, "never", timeout=0.2, retries=1)
        ok = JobSpec.create("ok", ADD_ONE, 1)
        with make_runner(jobs=2) as runner:
            sweep = runner.run([spec, ok])
        failure = sweep["hang"].failure
        assert failure is not None and failure.kind == "timeout"
        assert failure.attempts == 2
        assert sweep["ok"].value == 2  # the sweep was not aborted

    def test_worker_crash_reported_without_aborting(self):
        specs = [JobSpec.create("boom", "tests._runner_jobs:crash_hard",
                                retries=1),
                 JobSpec.create("ok", ADD_ONE, 10)]
        with make_runner(jobs=2) as runner:
            sweep = runner.run(specs)
        failure = sweep["boom"].failure
        assert failure is not None and failure.kind == "crash"
        assert sweep["ok"].ok and sweep["ok"].value == 11

    def test_crash_once_recovers_via_pool_rebuild(self, tmp_path):
        marker = tmp_path / "crashed.marker"
        spec = JobSpec.create("once",
                              "tests._runner_jobs:crash_once_then_return",
                              str(marker), "survived", retries=2)
        with make_runner(jobs=2) as runner:
            sweep = runner.run([spec])
        assert sweep["once"].ok and sweep["once"].value == "survived"
        assert sweep["once"].attempts >= 2


# ----------------------------------------------------------------------
# engine + cache: resume semantics


class TestRunnerCache:
    def specs(self, count=3):
        return [JobSpec.create(f"j{i}", ADD_ONE, i, seed=1, scale="smoke")
                for i in range(count)]

    def test_second_sweep_is_all_cache_hits(self, tmp_path):
        with make_runner(tmp_path) as runner:
            first = runner.run(self.specs())
        assert first.cache_hits == 0
        with make_runner(tmp_path) as runner:
            second = runner.run(self.specs())
        assert second.cache_hits == 3
        assert [o.value for o in second] == [o.value for o in first]
        assert all(o.attempts == 0 for o in second)  # nothing re-ran

    def test_killed_then_resumed_sweep_completes_from_cache(
            self, tmp_path, monkeypatch):
        log = tmp_path / "executions.log"
        cache_dir = tmp_path / "cache"
        specs = [JobSpec.create(f"j{i}", "tests._runner_jobs:record_attempt",
                                str(log), i, seed=1, scale="smoke")
                 for i in range(4)]
        # "Kill" the sweep after two jobs: run only a prefix, as if the
        # driver died mid-sweep with two results already persisted.
        with Runner(RunnerConfig(jobs=1),
                    cache=ResultCache(cache_dir,
                                      fingerprint="test")) as runner:
            runner.run(specs[:2])
        assert len(log.read_text().splitlines()) == 2
        # Resume the full sweep: the two finished jobs must come from the
        # cache (no re-execution), the rest must run.
        with Runner(RunnerConfig(jobs=2),
                    cache=ResultCache(cache_dir,
                                      fingerprint="test")) as runner:
            sweep = runner.run(specs)
        assert [o.value for o in sweep] == [0, 1, 2, 3]
        assert sweep.cache_hits == 2
        assert len(log.read_text().splitlines()) == 4  # only j2, j3 ran

    def test_failures_are_not_cached(self, tmp_path):
        spec = JobSpec.create("bad", "tests._runner_jobs:always_fails",
                              "nope", retries=0)
        with make_runner(tmp_path) as runner:
            assert not runner.run([spec])["bad"].ok
        with make_runner(tmp_path) as runner:
            second = runner.run([spec])
        assert second.cache_hits == 0  # failure was retried, not served

    def test_map_bypasses_cache_by_default(self, tmp_path):
        with make_runner(tmp_path) as runner:
            runner.map(ADD_ONE, [(1,)])
            assert runner.cache.stats.stores == 0
