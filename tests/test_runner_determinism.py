"""Determinism under parallelism (tier-1).

The determinism contract must survive the new execution engine: a sweep
with ``--jobs 2`` and a GA generation fanned across a pool must be
bit-identical to the serial path.  Runtime invariant contracts
(``REPRO_CONTRACTS=1``) are active throughout -- they are observers, and
worker processes inherit the setting.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import contracts
from repro.experiments.__main__ import main
from repro.experiments.common import (SCALED_MULTI_CONFIG,
                                      parallel_batch_evaluator)
from repro.runner import Runner, RunnerConfig, using_runner
from repro.sched.base import FrFcfsScheduler
from repro.tuning.ga import GaParams, GeneticAlgorithm
from repro.tuning.objectives import FitnessEvaluator, resolve_objective
from repro.workloads.benchmarks import trace_for

EXPERIMENTS = ["hw_cost", "fig02"]


@pytest.fixture(autouse=True)
def contracts_on(monkeypatch):
    """Contracts on in this process and in every forked worker."""
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    with contracts.enabled_scope():
        yield


def saved_results(directory: Path) -> dict:
    """The saved ``result`` payloads (metadata stripped: it carries
    wall-clock timings, which legitimately differ between runs)."""
    payloads = {}
    for path in sorted(directory.glob("*.json")):
        payloads[path.name] = json.loads(
            path.read_text(encoding="utf-8"))["result"]
    return payloads


class TestCliParallelDeterminism:
    def test_jobs2_bit_identical_to_serial(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(EXPERIMENTS + ["--save-dir", str(serial_dir),
                                   "--no-progress"]) == 0
        assert main(EXPERIMENTS + ["--jobs", "2",
                                   "--save-dir", str(parallel_dir),
                                   "--no-progress"]) == 0
        serial = saved_results(serial_dir)
        parallel = saved_results(parallel_dir)
        assert set(serial) == set(parallel) == {
            f"{name}.json" for name in EXPERIMENTS}
        assert serial == parallel

    def test_single_experiment_inner_parallelism_identical(self, tmp_path):
        # One experiment + --jobs fans the *inner* simulations out; the
        # saved result must still match the serial run byte for byte.
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        assert main(["fig02", "--save-dir", str(serial_dir),
                     "--no-progress"]) == 0
        assert main(["fig02", "--jobs", "2",
                     "--save-dir", str(parallel_dir), "--no-progress"]) == 0
        assert saved_results(serial_dir) == saved_results(parallel_dir)

    def test_resume_serves_identical_results(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first_dir = tmp_path / "first"
        resumed_dir = tmp_path / "resumed"
        assert main(EXPERIMENTS + ["--jobs", "2",
                                   "--cache-dir", str(cache_dir),
                                   "--save-dir", str(first_dir),
                                   "--no-progress"]) == 0
        assert main(EXPERIMENTS + ["--jobs", "2",
                                   "--cache-dir", str(cache_dir),
                                   "--save-dir", str(resumed_dir),
                                   "--require-cached",
                                   "--no-progress"]) == 0
        assert saved_results(first_dir) == saved_results(resumed_dir)


class TestGaParallelDeterminism:
    def make_evaluator(self):
        traces = [trace_for("mcf", seed=1), trace_for("bzip", seed=2)]
        evaluator = FitnessEvaluator(
            traces=traces, system_config=SCALED_MULTI_CONFIG,
            run_cycles=4_000, objective=resolve_objective("throughput"),
            scheduler_factory=FrFcfsScheduler)
        evaluator.measure_alone()
        return evaluator

    def run_ga(self, evaluator, batch_evaluator=None):
        from repro.core.bins import BinSpec

        ga = GeneticAlgorithm(evaluator, BinSpec(), 2,
                              GaParams(generations=2, population=4,
                                       seed=7),
                              batch_evaluator=batch_evaluator)
        return ga.run()

    def test_parallel_evaluator_matches_serial(self):
        serial = self.run_ga(self.make_evaluator())
        evaluator = self.make_evaluator()
        with Runner(RunnerConfig(jobs=2)) as runner:
            with using_runner(runner):
                parallel = self.run_ga(
                    evaluator,
                    batch_evaluator=parallel_batch_evaluator(evaluator))
        assert parallel.best_fitness == serial.best_fitness
        assert parallel.best_genome == serial.best_genome
        assert parallel.history == serial.history
        assert parallel.evaluations == serial.evaluations
        assert parallel.memo_hits == serial.memo_hits
