"""Tests for phase detection and trace file I/O."""

import io

import pytest

from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.benchmarks import trace_for
from repro.workloads.phases import (PhaseDetector, PhaseSample,
                                    SystemPhaseMonitor)
from repro.workloads.trace import ListTrace, TraceEvent
from repro.workloads.traceio import dump_trace, load_trace


class TestPhaseDetector:
    def test_stable_behaviour_no_changes(self):
        detector = PhaseDetector(threshold=0.5)
        for _ in range(20):
            assert not detector.observe(PhaseSample(0.01, 0.3))
        assert detector.changes == 0

    def test_sharp_change_detected_with_confirmation(self):
        detector = PhaseDetector(threshold=0.5, confirm=2)
        for _ in range(5):
            detector.observe(PhaseSample(0.01, 0.3))
        assert not detector.observe(PhaseSample(0.10, 0.9))  # 1st deviant
        assert detector.observe(PhaseSample(0.10, 0.9))      # confirmed
        assert detector.changes == 1

    def test_single_spike_ignored(self):
        detector = PhaseDetector(threshold=0.5, confirm=2)
        for _ in range(5):
            detector.observe(PhaseSample(0.01, 0.3))
        detector.observe(PhaseSample(0.10, 0.9))  # spike
        for _ in range(5):
            assert not detector.observe(PhaseSample(0.01, 0.3))
        assert detector.changes == 0

    def test_slow_drift_tracked_without_change(self):
        detector = PhaseDetector(threshold=0.5, confirm=2)
        rate = 0.010
        detector.observe(PhaseSample(rate, 0.3))
        for _ in range(60):
            rate *= 1.01  # 1% per window: inside the threshold
            assert not detector.observe(PhaseSample(rate, 0.3))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PhaseDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PhaseDetector(confirm=0)


class TestSystemPhaseMonitor:
    def test_detects_benchmark_phase_changes(self):
        # gcc has three distinct phases that wrap repeatedly.
        system = SimSystem([trace_for("gcc")],
                           config=SCALED_MULTI_CONFIG)
        monitor = SystemPhaseMonitor(system, window=4_000, threshold=0.8)
        system.run(120_000)
        assert monitor.changes_at == sorted(monitor.changes_at)

    def test_on_change_callback(self):
        system = SimSystem([trace_for("bhm_mail")],
                           config=SCALED_MULTI_CONFIG)
        fired = []
        monitor = SystemPhaseMonitor(system, window=3_000, threshold=0.4,
                                     on_change=lambda: fired.append(
                                         system.engine.now))
        system.run(90_000)
        assert fired == monitor.changes_at

    def test_window_validation(self):
        system = SimSystem([trace_for("gcc")],
                           config=SCALED_MULTI_CONFIG)
        with pytest.raises(ValueError):
            SystemPhaseMonitor(system, window=0)


class TestTraceIO:
    def sample_trace(self):
        return ListTrace([TraceEvent(3, 0x1000, False),
                          TraceEvent(0, 0xdeadc0, True),
                          TraceEvent(17, 0x40, False)])

    def test_round_trip_via_buffer(self):
        buffer = io.StringIO()
        count = dump_trace(self.sample_trace(), buffer)
        assert count == 3
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert list(loaded) == list(self.sample_trace())

    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        dump_trace(self.sample_trace(), path)
        assert list(load_trace(path)) == list(self.sample_trace())

    def test_comments_and_blank_lines_skipped(self):
        text = "# repro-trace v1\n\n# comment\n5 40 r\n"
        loaded = load_trace(io.StringIO(text))
        assert list(loaded) == [TraceEvent(5, 0x40, False)]

    @pytest.mark.parametrize("bad_line", [
        "5 40",               # missing kind
        "x 40 r",             # bad work
        "5 zz r",             # bad address
        "5 40 q",             # bad kind
        "-1 40 r",            # negative work
    ])
    def test_malformed_lines_rejected(self, bad_line):
        with pytest.raises(ValueError):
            load_trace(io.StringIO(bad_line + "\n"))

    def test_loaded_trace_runs_in_simulator(self, tmp_path):
        from repro.workloads.traceio import record_benchmark
        path = tmp_path / "gcc.trace"
        count = record_benchmark("gcc", path)
        assert count == len(trace_for("gcc"))
        system = SimSystem([load_trace(path)],
                           config=SCALED_MULTI_CONFIG)
        stats = system.run(10_000)
        assert stats.cores[0].work_cycles > 0
