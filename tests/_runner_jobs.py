"""Module-level job functions for the runner tests.

Job specs name callables by ``module:qualname`` path, so anything a
worker executes must live at module scope in an importable module --
hence this helper module rather than closures inside the tests.

Cross-process state (attempt counters, crash-once markers) goes through
the filesystem: the test hands each function a path inside ``tmp_path``.
"""

import os
import time


def add_one(x):
    return x + 1


def echo(value):
    return value


def always_fails(message):
    raise RuntimeError(message)


def sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def crash_hard():
    """Kill the worker process outright (bypasses all exception handling)."""
    os._exit(17)


def crash_once_then_return(marker_path, value):
    """Die the first time, succeed on retry (worker-crash recovery)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("crashed")
        os._exit(19)
    return value


def fail_until_attempt(counter_path, needed_attempts, value):
    """Raise until the cross-process attempt counter reaches the target."""
    with open(counter_path, "a", encoding="utf-8") as handle:
        handle.write("x")
    if os.path.getsize(counter_path) < needed_attempts:
        raise RuntimeError(
            f"attempt {os.path.getsize(counter_path)} of {needed_attempts}")
    return value


def raise_value_error(message):
    """Deterministic failure: the runner must not retry this."""
    raise ValueError(message)


def checkpointed_sim(marker_path, cycles):
    """Simulate with periodic checkpoints; die once after they exist.

    First attempt runs to completion (writing checkpoints along the way)
    and then kills the worker, leaving the last periodic checkpoint on
    disk.  The retry must *resume* from it -- the returned
    ``started_from`` records the cycle the attempt began at, and the
    fingerprint proves the resumed run matches an uninterrupted one.
    """
    from repro.resilience.checkpoint import (job_checkpoint_path,
                                             read_checkpoint_meta,
                                             run_with_checkpoints)
    from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
    from repro.workloads.mixes import workload_traces

    path = job_checkpoint_path()
    started_from = 0
    if path and os.path.exists(path):
        started_from = read_checkpoint_meta(path)["cycle"]

    def make():
        return SimSystem(workload_traces(1, seed=11),
                         config=SCALED_MULTI_CONFIG)

    system = run_with_checkpoints(make, cycles,
                                  interval=max(1, cycles // 3))
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(29)
    return {"started_from": started_from,
            "fingerprint": system.stats.fingerprint()}


def record_attempt(log_path, value):
    """Append one line per call: lets tests count real executions."""
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value
