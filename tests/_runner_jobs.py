"""Module-level job functions for the runner tests.

Job specs name callables by ``module:qualname`` path, so anything a
worker executes must live at module scope in an importable module --
hence this helper module rather than closures inside the tests.

Cross-process state (attempt counters, crash-once markers) goes through
the filesystem: the test hands each function a path inside ``tmp_path``.
"""

import os
import time


def add_one(x):
    return x + 1


def echo(value):
    return value


def always_fails(message):
    raise RuntimeError(message)


def sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def crash_hard():
    """Kill the worker process outright (bypasses all exception handling)."""
    os._exit(17)


def crash_once_then_return(marker_path, value):
    """Die the first time, succeed on retry (worker-crash recovery)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8") as handle:
            handle.write("crashed")
        os._exit(19)
    return value


def fail_until_attempt(counter_path, needed_attempts, value):
    """Raise until the cross-process attempt counter reaches the target."""
    with open(counter_path, "a", encoding="utf-8") as handle:
        handle.write("x")
    if os.path.getsize(counter_path) < needed_attempts:
        raise RuntimeError(
            f"attempt {os.path.getsize(counter_path)} of {needed_attempts}")
    return value


def record_attempt(log_path, value):
    """Append one line per call: lets tests count real executions."""
    with open(log_path, "a", encoding="utf-8") as handle:
        handle.write(f"{value}\n")
    return value
