"""Unit tests for the shared LLC and the memory controller."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.timing import DramTiming
from repro.sim.cache import Cache, CacheGeometry
from repro.sim.engine import Engine
from repro.sim.llc import SharedLLC
from repro.sim.memctrl import MemoryController
from repro.sim.request import MemoryRequest
from repro.sim.stats import CoreStats, SystemStats


def make_request(core=0, address=0, write=False):
    return MemoryRequest(core_id=core, address=address, is_write=write)


class FifoSched:
    def select(self, queue, now, controller):
        return queue[0] if queue else None

    def on_complete(self, request, now):
        pass


class TestSharedLLC:
    def make_llc(self, cores=2, hit_latency=30, banks=2):
        engine = Engine()
        stats = SystemStats(cores=[CoreStats(core_id=i)
                                   for i in range(cores)])
        forwarded, responses = [], []
        llc = SharedLLC(engine, Cache(CacheGeometry(4096, 2)),
                        forward_miss=forwarded.append,
                        respond=lambda r, hit: responses.append((r, hit)),
                        hit_latency=hit_latency, banks=banks,
                        stats=stats)
        return engine, llc, forwarded, responses, stats

    def test_miss_forwarded_to_mc(self):
        engine, llc, forwarded, responses, _ = self.make_llc()
        llc.lookup(make_request(address=0))
        engine.run()
        assert len(forwarded) == 1
        assert responses == [(forwarded[0], False)]

    def test_hit_responds_without_forwarding(self):
        engine, llc, forwarded, responses, _ = self.make_llc()
        llc.lookup(make_request(address=0))
        engine.run()
        llc.lookup(make_request(address=0))
        engine.run()
        assert len(forwarded) == 1  # only the first miss
        assert responses[-1][1] is True

    def test_hit_latency_observed(self):
        engine, llc, _, responses, _ = self.make_llc(hit_latency=25)
        stamps = []
        llc.respond = lambda r, hit: stamps.append((engine.now, hit))
        llc.lookup(make_request(address=0))
        engine.run()
        llc.lookup(make_request(address=0))
        engine.run()
        # Both determinations arrive hit_latency after their lookup start.
        assert stamps[0][0] >= 25
        assert stamps[1] == (stamps[0][0] + 25 + llc.bank_busy, True) \
            or stamps[1][1] is True

    def test_bank_serialisation_delays_same_bank(self):
        engine, llc, _, responses, _ = self.make_llc(banks=1, hit_latency=10)
        llc.lookup(make_request(address=0))
        llc.lookup(make_request(core=1, address=64))
        engine.run()
        # Second lookup started bank_busy cycles later.
        assert engine.now >= 10 + llc.bank_busy

    def test_per_core_stats_attributed(self):
        engine, llc, _, _, stats = self.make_llc()
        llc.lookup(make_request(core=1, address=0))
        engine.run()
        assert stats.cores[1].llc_misses == 1
        assert stats.cores[0].llc_misses == 0

    def test_writeback_lookup_not_counted_in_demand_stats(self):
        engine, llc, _, _, stats = self.make_llc()
        writeback = make_request(core=0, address=0, write=True)
        writeback.shaper_bin = -2
        llc.lookup(writeback)
        engine.run()
        assert stats.cores[0].llc_misses == 0

    def test_dirty_llc_eviction_generates_memory_write(self):
        engine, llc, forwarded, _, _ = self.make_llc()
        # Fill one set (2 ways) with writes, then evict.
        sets = llc.cache.geometry.num_sets
        stride = sets * 64
        llc.lookup(make_request(address=0, write=True))
        llc.lookup(make_request(address=stride, write=True))
        llc.lookup(make_request(address=2 * stride, write=True))
        engine.run()
        writebacks = [r for r in forwarded if r.shaper_bin == -2]
        assert len(writebacks) == 1
        assert writebacks[0].address == 0


class TestMemoryController:
    def make_mc(self, depth=4, cores=1):
        engine = Engine()
        stats = SystemStats(cores=[CoreStats(core_id=i)
                                   for i in range(cores)])
        completed = []
        timing = DramTiming(refresh_enabled=False)
        mc = MemoryController(engine, DramDevice(timing), FifoSched(),
                              complete=completed.append,
                              queue_depth=depth, stats=stats)
        return engine, mc, completed, stats

    def test_request_completes(self):
        engine, mc, completed, stats = self.make_mc()
        mc.enqueue(make_request(address=0))
        engine.run()
        assert len(completed) == 1
        assert completed[0].complete_cycle == 0  # set by core normally
        assert stats.cores[0].dram_requests == 1

    def test_writeback_counted_separately(self):
        engine, mc, completed, stats = self.make_mc()
        writeback = make_request(address=0, write=True)
        writeback.shaper_bin = -2
        mc.enqueue(writeback)
        engine.run()
        assert stats.cores[0].writebacks == 1
        assert stats.cores[0].dram_requests == 0

    def test_overflow_beyond_queue_depth(self):
        # 8 bank-parallel slots dispatch immediately; beyond depth=2 more
        # queued entries spill into the overflow FIFO.
        engine, mc, completed, stats = self.make_mc(depth=2)
        for i in range(16):
            mc.enqueue(make_request(address=i * 64))
        assert stats.queue_backpressure_events > 0
        engine.run()
        assert len(completed) == 16

    def test_peak_queue_depth_recorded(self):
        engine, mc, _, stats = self.make_mc(depth=3)
        for i in range(16):
            mc.enqueue(make_request(address=i * 64))
        assert stats.peak_queue_depth >= 4

    def test_all_requests_eventually_complete(self):
        engine, mc, completed, _ = self.make_mc(depth=4)
        for i in range(32):
            mc.enqueue(make_request(address=i * 8192))  # spread banks
        engine.run()
        assert len(completed) == 32

    def test_dram_start_recorded(self):
        engine, mc, completed, _ = self.make_mc()
        request = make_request(address=0)
        mc.enqueue(request)
        engine.run()
        assert request.dram_start_cycle >= request.mc_arrival_cycle
