"""The fabric hardening layer: fault injection, verified writes,
quarantine, doctor, dispositions, and the lease renewer's clock seam.

``FaultyFS`` tests pin the *injection* semantics (deterministic from
the plan, honest failure footprints, bit-neutral when quiescent); the
queue tests pin the *recovery* semantics those injections exercise.
The chaos suite (``tests/test_resilience_chaos.py``) then drives both
ends together through whole campaigns.
"""

import errno
import json
import pickle

import pytest

from repro.fabric.doctor import diagnose
from repro.fabric.harden import (FAULT_CLASSES, FaultPlan, FaultPlanError,
                                 FaultyFS, total_injections)
from repro.fabric.manifest import parse_manifest
from repro.fabric.queue import (DISPOSITION_COMPLETE, DISPOSITION_DEGRADED,
                                DISPOSITION_WEDGED, REASON_DETERMINISTIC,
                                REASON_EXHAUSTED, CampaignQueue, Diagnosis,
                                QueueError)
from repro.fabric.service import _LeaseRenewer, work_campaign
from repro.runner import wallclock


def make_queue(tmp_path, fn="tests._fabric_jobs:add_one",
               values=(1, 2), name="h") -> CampaignQueue:
    manifest = parse_manifest({
        "name": name, "fn": fn, "grid": {"x": list(values)},
        "policy": {"retries": 0}})
    return CampaignQueue.submit(tmp_path / "root", manifest)


def done_record(queue, index):
    spec = queue.load_spec(index)
    return {"status": "done", "job_index": index, "job_id": spec.job_id,
            "metrics": {"value": 1.0}}


class TestFaultPlan:
    def test_parse_spec_round_trip(self):
        plan = FaultPlan.parse("seed=7,rate=0.05,faults=enospc+eio,limit=3")
        assert plan == FaultPlan(seed=7, rate=0.05,
                                 faults=("enospc", "eio"), limit=3)
        assert FaultPlan.parse(plan.spec()) == plan

    def test_defaults_are_quiescent_all_faults(self):
        plan = FaultPlan.parse("")
        assert plan.rate == 0.0
        assert plan.faults == FAULT_CLASSES
        assert plan.limit is None

    def test_malformed_specs_raise(self):
        with pytest.raises(FaultPlanError, match="key=value"):
            FaultPlan.parse("seed")
        with pytest.raises(FaultPlanError, match="unknown key"):
            FaultPlan.parse("sneed=7")
        with pytest.raises(FaultPlanError, match="bad value"):
            FaultPlan.parse("rate=often")
        with pytest.raises(FaultPlanError, match="rate must be"):
            FaultPlan.parse("rate=2.0")
        with pytest.raises(FaultPlanError, match="unknown fault"):
            FaultPlan.parse("faults=gremlins")


class TestFaultyFS:
    def _exercise(self, shim, base):
        """A fixed op sequence; returns the observable outcome trace."""
        shim.mkdir(base)
        trace = []
        for i in range(30):
            path = base / f"f{i}.json"
            try:
                shim.write_atomic(path, f"payload-{i}" * 4)
                trace.append(f"w{i}:ok")
            except OSError as exc:
                trace.append(f"w{i}:{exc.errno}")
            try:
                shim.read_text(path)
                trace.append(f"r{i}:ok")
            except OSError as exc:
                trace.append(f"r{i}:{exc.errno}")
        return trace

    def test_same_plan_same_injections(self, tmp_path):
        plan = FaultPlan(seed=3, rate=0.3)
        first = FaultyFS(plan)
        second = FaultyFS(plan)
        trace_a = self._exercise(first, tmp_path / "a")
        trace_b = self._exercise(second, tmp_path / "b")
        assert trace_a == trace_b
        assert first.injected == second.injected
        assert first.total_injected >= 1  # the plan actually fired

    def test_quiescent_shim_is_bit_neutral(self, tmp_path):
        shim = FaultyFS(FaultPlan(seed=9, rate=0.0))
        path = tmp_path / "doc.json"
        shim.write_atomic(path, "exact bytes")
        assert shim.read_text(path) == "exact bytes"
        assert path.read_text(encoding="utf-8") == "exact bytes"
        assert shim.injected == {}
        assert shim.total_injected == 0
        assert shim.operations >= 2  # routed, counted, untouched

    def test_limit_caps_total_injections(self, tmp_path):
        shim = FaultyFS(FaultPlan(seed=1, rate=1.0, faults=("eio",),
                                  limit=2))
        path = tmp_path / "f.json"
        path.write_text("v", encoding="utf-8")
        failures = 0
        for _ in range(10):
            try:
                shim.read_text(path)
            except OSError:
                failures += 1
        assert failures == 2  # exactly the first N are sick, then heals
        assert shim.injected == {"eio": 2}

    def test_short_write_commits_truncated_prefix_silently(self, tmp_path):
        shim = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                  faults=("short-write",), limit=1))
        path = tmp_path / "f.json"
        shim.write_atomic(path, "x" * 10)  # returns success -- the lie
        assert path.read_text(encoding="utf-8") == "x" * 5
        shim.write_atomic(path, "x" * 10)  # healed
        assert path.read_text(encoding="utf-8") == "x" * 10

    def test_torn_rename_leaves_debris_and_fails(self, tmp_path):
        shim = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                  faults=("torn-rename",), limit=1))
        path = tmp_path / "f.json"
        with pytest.raises(OSError) as excinfo:
            shim.write_atomic(path, "content")
        assert excinfo.value.errno == errno.EIO
        assert not path.exists()  # destination never replaced
        assert (tmp_path / ".f.json.torn.tmp").exists()  # the footprint
        shim.write_atomic(path, "content")
        assert path.read_text(encoding="utf-8") == "content"

    def test_enospc_raises_before_any_mutation(self, tmp_path):
        for operation in ("write_atomic", "create_exclusive"):
            shim = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                      faults=("enospc",), limit=1))
            path = tmp_path / f"{operation}.json"
            with pytest.raises(OSError) as excinfo:
                getattr(shim, operation)(path, "content")
            assert excinfo.value.errno == errno.ENOSPC
            assert not path.exists()

    def test_stale_read_serves_previous_committed_version(self, tmp_path):
        shim = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                  faults=("stale-read",), limit=1))
        path = tmp_path / "f.json"
        shim.write_atomic(path, "version 1")  # writes never inject here
        shim.write_atomic(path, "version 2")
        assert shim.read_text(path) == "version 1"  # the cache lie
        assert shim.read_text(path) == "version 2"  # cache expired
        assert shim.injected == {"stale-read": 1}

    def test_stale_read_of_fresh_file_is_honest(self, tmp_path):
        # A path written exactly once has no previous version to lie
        # with; the shim must fall through to real content.
        shim = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                  faults=("stale-read",)))
        path = tmp_path / "f.json"
        shim.write_atomic(path, "only version")
        assert shim.read_text(path) == "only version"


class TestVerifiedWrites:
    def test_short_write_caught_and_retried(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.storage = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                           faults=("short-write",),
                                           limit=1),
                                 inner=queue.storage)
        path = queue.result_path(0)
        queue._write_verified(path, {"value": 42}, "result")
        assert json.loads(path.read_text(encoding="utf-8")) \
            == {"value": 42}
        assert queue.storage.injected == {"short-write": 1}
        assert queue.corruption.total == 0  # recovered, not corrupted

    def test_persistent_corruption_raises_and_is_counted(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.storage = FaultyFS(FaultPlan(seed=1, rate=1.0,
                                           faults=("short-write",)),
                                 inner=queue.storage)
        with pytest.raises(QueueError, match="could not durably write"):
            queue._write_verified(queue.result_path(0), {"value": 42},
                                  "result")
        assert queue.corruption.total == 1
        assert queue.corruption.by_category == {"result": 1}

    def test_missing_and_damaged_are_distinguished(self, tmp_path):
        queue = make_queue(tmp_path)
        document, state = queue._load_classified(
            queue.result_path(0), "result")
        assert (document, state) == (None, "missing")
        assert queue.corruption.total == 0  # missing is normal, not sick
        queue.result_path(0).parent.mkdir(parents=True, exist_ok=True)
        queue.result_path(0).write_text("{torn", encoding="utf-8")
        document, state = queue._load_classified(
            queue.result_path(0), "result")
        assert (document, state) == (None, "damaged")
        assert queue.corruption.by_category == {"result": 1}
        assert queue.corruption.as_dict()["examples"]


class TestQuarantine:
    def test_deterministic_failure_quarantined_on_first_attempt(
            self, tmp_path):
        queue = make_queue(tmp_path, fn="tests._fabric_jobs:fail_on_odd",
                           values=(1, 2))
        counters = work_campaign(queue, jobs=1, pool=False, retries=0)
        assert counters["done"] == 1
        assert counters["quarantined"] == 1
        assert counters["released"] == 0  # never released for retry
        assert counters["disposition"] == DISPOSITION_DEGRADED
        assert queue.dead_letter_indices() == [0]
        diagnosis = queue.load_diagnosis(0)
        assert diagnosis.reason == REASON_DETERMINISTIC
        assert diagnosis.error_type == "ValueError"
        assert diagnosis.attempts == 1
        record = queue.load_result(0)
        assert record["error"] == ("quarantined[deterministic-error]: "
                                   "error: ValueError: odd input 1")
        assert record["attempts"] == 1

    def test_nondeterministic_failure_burns_ledger_to_quarantine(
            self, tmp_path):
        queue = make_queue(tmp_path, fn="tests._fabric_jobs:always_crash",
                           values=(1,))
        counters = work_campaign(queue, jobs=1, pool=False, retries=0,
                                 max_attempts=2, poll_seconds=0.01)
        assert counters["released"] == 1   # attempt 1: retryable
        assert counters["quarantined"] == 1  # attempt 2: budget spent
        assert counters["disposition"] == DISPOSITION_DEGRADED
        diagnosis = queue.load_diagnosis(0)
        assert diagnosis.reason == REASON_EXHAUSTED
        assert diagnosis.attempts == 2
        assert len(diagnosis.history) == 2  # the ledger survived release
        assert all(event["error_type"] == "RuntimeError"
                   for event in diagnosis.history)
        # The error column is canonical: no machine-state luck (which
        # message the job last died with) leaks into the fingerprint.
        assert queue.load_result(0)["error"] == (
            "quarantined[attempts-exhausted]: retry budget exhausted "
            "(non-deterministic failures)")

    def test_claim_time_backstop_quarantines_spent_ledger(self, tmp_path):
        # The worker-died-every-time case: the ledger count rises on
        # every claim even when no worker survives to record a failure,
        # so claim_next itself must eventually refuse and quarantine.
        queue = make_queue(tmp_path, values=(1,))
        for _ in range(2):
            job = queue.claim_next("doomed", lease_seconds=0.0)
            assert job is not None
            queue.release(job.index)
        assert queue.claim_next("w", max_attempts=2) is None
        assert queue.dead_letter_indices() == [0]
        diagnosis = queue.load_diagnosis(0)
        assert diagnosis.reason == REASON_EXHAUSTED
        assert diagnosis.error_type == "WorkerLost"  # no recorded event
        assert queue.is_drained()  # terminal: the campaign can finish

    def test_diagnosis_is_plain_picklable_data(self):
        diagnosis = Diagnosis(
            job_index=3, job_id="j[3]", spec_hash="ab" * 32,
            reason=REASON_DETERMINISTIC, kind="error",
            error_type="ValueError", message="odd input 1",
            traceback="Traceback ...", attempts=1,
            history=({"kind": "error", "attempt": 1},))
        clone = pickle.loads(pickle.dumps(diagnosis))
        assert clone == diagnosis
        round_trip = Diagnosis.from_dict(diagnosis.as_dict())
        assert round_trip == diagnosis

    def test_from_dict_ignores_unknown_keys(self):
        document = Diagnosis(
            job_index=0, job_id="j", spec_hash="", reason=REASON_EXHAUSTED,
            kind="crash", error_type="WorkerLost", message="",
            traceback="", attempts=4).as_dict()
        document["added_in_a_future_version"] = True
        assert Diagnosis.from_dict(document).attempts == 4


class TestRequeue:
    def test_requeue_restores_runnability(self, tmp_path):
        queue = make_queue(tmp_path, fn="tests._fabric_jobs:fail_on_odd",
                           values=(1, 2))
        work_campaign(queue, jobs=1, pool=False, retries=0)
        assert queue.dead_letter_indices() == [0]
        diagnosis = queue.requeue(0)
        assert diagnosis.reason == REASON_DETERMINISTIC
        assert queue.dead_letter_indices() == []
        assert not queue.has_result(0)
        job = queue.claim_next("again")
        assert job is not None and job.index == 0
        assert job.attempt == 1  # the ledger was cleared too

    def test_requeue_without_dead_letter_raises(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        with pytest.raises(QueueError, match="no dead-letter entry"):
            queue.requeue(0)

    def test_requeue_refuses_to_clobber_success(self, tmp_path):
        queue = make_queue(tmp_path, fn="tests._fabric_jobs:fail_on_odd",
                           values=(1,))
        work_campaign(queue, jobs=1, pool=False, retries=0)
        # The job later succeeded (say, after a code fix and manual
        # re-run); its dead letter is historical, not actionable.
        queue._write_verified(queue.result_path(0), done_record(queue, 0),
                              "result")
        with pytest.raises(QueueError, match="refusing to requeue"):
            queue.requeue(0)


class TestDispositions:
    def test_complete(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        work_campaign(queue, jobs=1, pool=False)
        assert queue.snapshot()["disposition"] == DISPOSITION_COMPLETE

    def test_damaged_result_degrades_a_drained_campaign(self, tmp_path):
        queue = make_queue(tmp_path, values=(1, 2))
        work_campaign(queue, jobs=1, pool=False)
        queue.result_path(1).write_text("{torn", encoding="utf-8")
        snapshot = queue.snapshot()
        assert snapshot["damaged"] == 1
        assert snapshot["disposition"] == DISPOSITION_DEGRADED
        assert snapshot["corruption"]["by_category"] == {"result": 1}

    def test_damaged_spec_with_nothing_running_is_wedged(self, tmp_path):
        queue = make_queue(tmp_path, values=(1, 2))
        job = queue.claim_next("w")
        queue.complete(job, done_record(queue, job.index))
        (queue.jobs_dir / "000001.json").write_text("{torn",
                                                    encoding="utf-8")
        snapshot = queue.snapshot()
        assert snapshot["pending"] == 1
        assert snapshot["unrunnable"] == 1
        assert snapshot["disposition"] == DISPOSITION_WEDGED
        # No worker can claim it -- the wedge is real, not transient.
        assert queue.claim_next("w") is None

    def test_damaged_claim_counts_stale_and_is_stolen(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        queue.claim_next("victim", lease_seconds=3600)
        queue._claim_path(0).write_text("{torn", encoding="utf-8")
        snapshot = queue.snapshot()
        assert snapshot["stale"] == 1  # cannot prove liveness: stealable
        assert snapshot["corruption"]["total"] >= 1
        thief = queue.claim_next("thief")
        assert thief is not None and thief.index == 0


class TestDoctor:
    def test_clean_campaign_is_clean(self, tmp_path):
        queue = make_queue(tmp_path)
        work_campaign(queue, jobs=1, pool=False)
        report = diagnose(queue)
        assert report["clean"] and report["findings"] == []

    def test_orphaned_claim_released(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("w", lease_seconds=3600)
        # Result lands but the release is lost (crash between the two).
        queue._write_verified(queue.result_path(0),
                              done_record(queue, 0), "result")
        report = diagnose(queue, repair=True)
        assert report["by_category"] == {"orphaned-claim": 1}
        assert report["repaired"] == 1
        assert diagnose(queue)["clean"]
        assert job is not None  # silence the unused-name linters

    def test_damaged_result_deleted_and_job_reruns(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        work_campaign(queue, jobs=1, pool=False)
        queue.result_path(0).write_text("{torn", encoding="utf-8")
        report = diagnose(queue, repair=True)
        assert report["by_category"] == {"damaged-result": 1}
        assert not queue.has_result(0)
        assert queue.claim_next("again") is not None  # deterministic rerun

    def test_stale_dead_letter_deleted(self, tmp_path):
        queue = make_queue(tmp_path, fn="tests._fabric_jobs:fail_on_odd",
                           values=(1,))
        work_campaign(queue, jobs=1, pool=False, retries=0)
        queue._write_verified(queue.result_path(0),
                              done_record(queue, 0), "result")
        report = diagnose(queue, repair=True)
        assert report["by_category"] == {"dead-letter-stale": 1}
        assert queue.dead_letter_indices() == []

    def test_interrupted_quarantine_requarantined(self, tmp_path):
        queue = make_queue(tmp_path, fn="tests._fabric_jobs:fail_on_odd",
                           values=(1,))
        work_campaign(queue, jobs=1, pool=False, retries=0)
        expected = queue.load_result(0)
        queue.storage.unlink(queue.result_path(0))  # the crash window
        report = diagnose(queue, repair=True)
        assert report["by_category"] == {"dead-letter-no-result": 1}
        # The terminal result is rebuilt from the stored diagnosis,
        # byte-identical to the one the interrupted quarantine wrote.
        assert queue.load_result(0) == expected

    def test_debris_swept(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        debris = queue.results_dir / ".000000.json.torn.tmp"
        debris.write_text("half", encoding="utf-8")
        report = diagnose(queue, repair=True)
        assert report["by_category"] == {"debris": 1}
        assert not debris.exists()

    def test_damaged_job_is_reported_not_repaired(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        (queue.jobs_dir / "000000.json").write_text("{torn",
                                                    encoding="utf-8")
        report = diagnose(queue, repair=True)
        assert report["by_category"] == {"damaged-job": 1}
        assert report["repaired"] == 0
        assert report["unrepairable"] == 1  # doctor cannot invent a spec


class TestLeaseRenewerClock:
    def test_backward_clock_skew_renews_immediately(self, tmp_path,
                                                    monkeypatch):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("w", lease_seconds=30.0)
        held = {job.spec.job_id: job}
        renewer = _LeaseRenewer(queue, held, 30.0)

        monkeypatch.setattr(wallclock, "now", lambda: 1000.0)
        renewer([job.spec.job_id])
        assert renewer._renewed_at[job.spec.job_id] == 1000.0

        # Within a third of the lease: nothing due, stamp untouched.
        monkeypatch.setattr(wallclock, "now", lambda: 1005.0)
        renewer([job.spec.job_id])
        assert renewer._renewed_at[job.spec.job_id] == 1000.0

        # The clock steps backwards (VM suspend / NTP).  The future-
        # dated stamp must not defer renewal while the epoch-based
        # lease ages toward a steal: skew means "renew now".
        monkeypatch.setattr(wallclock, "now", lambda: 500.0)
        renewer([job.spec.job_id])
        assert renewer._renewed_at[job.spec.job_id] == 500.0

    def test_released_job_not_renewed(self, tmp_path, monkeypatch):
        queue = make_queue(tmp_path, values=(1,))
        job = queue.claim_next("w", lease_seconds=30.0)
        renewer = _LeaseRenewer(queue, {job.spec.job_id: job}, 30.0)
        queue.release(job.index)
        monkeypatch.setattr(wallclock, "now", lambda: 1000.0)
        renewer([job.spec.job_id])
        assert job.spec.job_id not in renewer._renewed_at
        assert queue.claim_next("b") is not None  # not resurrected


class TestFaultedCampaigns:
    def test_campaign_survives_seeded_fault_storm(self, tmp_path):
        reference = make_queue(tmp_path / "ref",
                               fn="tests._fabric_jobs:scaled_metric",
                               values=(1, 2, 3))
        work_campaign(reference, jobs=1, pool=False)

        queue = make_queue(tmp_path / "sick",
                           fn="tests._fabric_jobs:scaled_metric",
                           values=(1, 2, 3))
        shim = FaultyFS(FaultPlan(seed=5, rate=0.15), inner=queue.storage)
        queue.storage = shim
        counters = work_campaign(queue, jobs=1, pool=False,
                                 poll_seconds=0.01)
        assert counters["disposition"] == DISPOSITION_COMPLETE
        assert queue.is_drained()

        from repro.fabric.db import ResultsDb
        with ResultsDb(tmp_path / "a.sqlite") as db:
            db.merge_queue(reference)
            left = db.fingerprint(reference.campaign_id)
        healthy = CampaignQueue(tmp_path / "sick" / "root",
                                queue.campaign_id)
        with ResultsDb(tmp_path / "b.sqlite") as db:
            db.merge_queue(healthy)
            assert db.fingerprint(healthy.campaign_id) == left

    def test_injection_sidecars_are_summed(self, tmp_path):
        queue = make_queue(tmp_path, values=(1,))
        directory = queue.directory
        (directory / "fault-injections-11.json").write_text(
            json.dumps({"total_injected": 2}), encoding="utf-8")
        (directory / "fault-injections-12.json").write_text(
            json.dumps({"total_injected": 3}), encoding="utf-8")
        (directory / "fault-injections-13.json").write_text(
            "{torn", encoding="utf-8")  # a sick sidecar is skipped
        assert total_injections(directory) == 5
        assert total_injections(tmp_path / "nowhere") == 0
