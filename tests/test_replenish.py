"""Unit tests for replenishment policies."""

import pytest

from repro.core.bins import BinConfig
from repro.core.credits import CreditState
from repro.core.replenish import RateReplenisher, ResetReplenisher


def drained_state(credits):
    config = BinConfig.from_credits(credits)
    state = CreditState(config)
    for index, count in enumerate(credits):
        for _ in range(count):
            state.deduct(index)
    return config, state


class TestResetReplenisher:
    def test_no_replenish_before_boundary(self):
        config, state = drained_state([4] + [0] * 9)
        policy = ResetReplenisher(config)
        policy.apply_until(state, policy.period - 1)
        assert state.total_available() == 0

    def test_replenish_at_boundary(self):
        config, state = drained_state([4] + [0] * 9)
        policy = ResetReplenisher(config)
        policy.apply_until(state, policy.period)
        assert state.counts[0] == 4

    def test_multiple_periods_collapse_to_one_reset(self):
        config, state = drained_state([4] + [0] * 9)
        policy = ResetReplenisher(config)
        policy.apply_until(state, 10 * policy.period + 3)
        assert state.counts[0] == 4
        # Clock caught up past the applied boundaries.
        assert policy.next_boundary() > 10 * policy.period

    def test_default_period_matches_config(self):
        config = BinConfig.from_credits([2, 1] + [0] * 8)
        policy = ResetReplenisher(config)
        assert policy.period == config.replenish_period()

    def test_explicit_period_override(self):
        config = BinConfig.from_credits([2] + [0] * 9)
        policy = ResetReplenisher(config, period=1000)
        assert policy.period == 1000

    def test_invalid_period_rejected(self):
        config = BinConfig.from_credits([1] * 10)
        with pytest.raises(ValueError):
            ResetReplenisher(config, period=0)

    def test_reset_clock(self):
        config = BinConfig.from_credits([2] + [0] * 9)
        policy = ResetReplenisher(config)
        policy.reset_clock(500)
        assert policy.next_boundary() == 500 + policy.period


class TestRateReplenisher:
    def test_budget_neutral_over_one_period(self):
        """A full period of drips adds exactly K_i per bin."""
        config, state = drained_state([8, 3, 1] + [0] * 7)
        policy = RateReplenisher(config, slices=8)
        policy.apply_until(state, policy.period + policy._slice_period)
        assert state.counts[0] == 8
        assert state.counts[1] == 3
        assert state.counts[2] == 1

    def test_partial_period_gives_partial_credits(self):
        config, state = drained_state([8] + [0] * 9)
        policy = RateReplenisher(config, slices=8)
        # Half the slices have fired: about half the credits are back.
        policy.apply_until(state, policy.period // 2)
        assert 3 <= state.counts[0] <= 5

    def test_small_bins_do_not_overfill(self):
        """A 1-credit bin must not be topped up on every slice: the drip
        is budget-neutral, not a continuous refill."""
        config = BinConfig.from_credits([0] * 9 + [1])
        state = CreditState(config)
        policy = RateReplenisher(config, slices=8)
        spent = 0
        now = 0
        for _ in range(40):
            now += policy._slice_period
            policy.apply_until(state, now)
            if state.counts[9] > 0:
                state.deduct(9)
                spent += 1
        periods = now // policy.period + 1
        assert spent <= periods * 1 + 1

    def test_counts_saturate_at_limit(self):
        config = BinConfig.from_credits([4] + [0] * 9)
        state = CreditState(config)  # starts full
        policy = RateReplenisher(config, slices=4)
        policy.apply_until(state, 3 * policy.period)
        assert state.counts[0] == 4

    def test_invalid_slices_rejected(self):
        config = BinConfig.from_credits([1] * 10)
        with pytest.raises(ValueError):
            RateReplenisher(config, slices=0)

    def test_one_slice_equals_reset(self):
        config, state_rate = drained_state([5, 2] + [0] * 8)
        _, state_reset = drained_state([5, 2] + [0] * 8)
        rate = RateReplenisher(config, slices=1)
        reset = ResetReplenisher(config)
        rate.apply_until(state_rate, rate.period)
        reset.apply_until(state_reset, reset.period)
        assert state_rate.counts == state_reset.counts
