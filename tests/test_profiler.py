"""Tests for profile-based bin configuration (Section III-F)."""

import pytest

from repro.core.bins import BinConfig, BinSpec
from repro.core.shaper import MittsShaper
from repro.sim.system import SCALED_SINGLE_CONFIG, SimSystem
from repro.tuning.profiler import (Profile, config_from_profile,
                                   profile_application, profile_benchmark)
from repro.workloads.benchmarks import trace_for


class TestProfileCapture:
    def test_profile_collects_histogram(self):
        profile = profile_application(trace_for("mcf"),
                                      SCALED_SINGLE_CONFIG, 20_000)
        assert profile.requests > 10
        assert profile.cycles == 20_000
        assert sum(profile.histogram.values()) > 0

    def test_request_rate(self):
        profile = Profile(histogram={0: 10}, cycles=1000, requests=10)
        assert profile.request_rate == pytest.approx(0.01)

    def test_empty_profile_rate(self):
        profile = Profile(histogram={}, cycles=0, requests=0)
        assert profile.request_rate == 0.0


class TestConfigFromProfile:
    def test_empty_histogram_gives_minimal_config(self):
        profile = Profile(histogram={}, cycles=1000, requests=0)
        config = config_from_profile(profile)
        assert config.total_credits == 1

    def test_buckets_map_to_matching_bins(self):
        # All requests at ~45-cycle inter-arrival -> bin 4 dominates.
        profile = Profile(histogram={4: 200}, cycles=9000, requests=200)
        config = config_from_profile(profile)
        populated = [i for i, c in enumerate(config.credits) if c > 0]
        assert populated == [4]

    def test_tail_clamps_into_last_bin(self):
        profile = Profile(histogram={50: 100}, cycles=50_000,
                          requests=100)
        config = config_from_profile(profile)
        assert config.credits[-1] > 0
        assert sum(config.credits[:-1]) == 0

    def test_coverage_trims_fast_bins_first(self):
        profile = Profile(histogram={0: 100, 9: 100}, cycles=10_000,
                          requests=200)
        full = config_from_profile(profile, coverage=1.0)
        trimmed = config_from_profile(profile, coverage=0.5)
        assert trimmed.total_credits < full.total_credits
        # The fast end lost more than the slow end.
        assert (full.credits[0] - trimmed.credits[0]) \
            >= (full.credits[9] - trimmed.credits[9])

    def test_coverage_validation(self):
        profile = Profile(histogram={0: 1}, cycles=100, requests=1)
        with pytest.raises(ValueError):
            config_from_profile(profile, coverage=0.0)
        with pytest.raises(ValueError):
            config_from_profile(profile, headroom=0.0)

    def test_credits_respect_spec_maximum(self):
        spec = BinSpec(max_credits=8)
        profile = Profile(histogram={0: 100_000}, cycles=100_000,
                          requests=100_000)
        config = config_from_profile(profile, spec=spec)
        assert all(c <= 8 for c in config.credits)


class TestEndToEnd:
    def test_profiled_config_preserves_most_performance(self):
        """A full-coverage profiled config should cost little performance
        relative to running unshaped (that is the point of profiling)."""
        trace = trace_for("apache")
        free = SimSystem([trace], config=SCALED_SINGLE_CONFIG)
        free_work = free.run(40_000).cores[0].work_cycles

        config = profile_benchmark("apache", SCALED_SINGLE_CONFIG,
                                   40_000, headroom=1.5)
        shaped = SimSystem([trace], config=SCALED_SINGLE_CONFIG,
                           limiters=[MittsShaper(config)])
        shaped_work = shaped.run(40_000).cores[0].work_cycles
        assert shaped_work >= 0.7 * free_work

    def test_lower_coverage_cheaper(self):
        from repro.core.pricing import config_price_core_equivalents
        full = profile_benchmark("mcf", SCALED_SINGLE_CONFIG, 30_000,
                                 coverage=1.0)
        half = profile_benchmark("mcf", SCALED_SINGLE_CONFIG, 30_000,
                                 coverage=0.4)
        assert half.total_credits <= full.total_credits

    def test_profiled_config_is_valid(self):
        config = profile_benchmark("libquantum", SCALED_SINGLE_CONFIG,
                                   20_000)
        assert isinstance(config, BinConfig)
        assert config.total_credits >= 1
