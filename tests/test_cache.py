"""Unit tests for the set-associative cache model."""

import pytest

from repro.sim.cache import Cache, CacheGeometry


def small_cache(ways=2, sets=4, line=64):
    return Cache(CacheGeometry(size_bytes=ways * sets * line, ways=ways,
                               line_bytes=line))


class TestGeometry:
    def test_num_sets(self):
        geometry = CacheGeometry(size_bytes=32 * 1024, ways=4)
        assert geometry.num_sets == 128

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=0, ways=4)
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=100, ways=3)  # not a multiple


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        hit, _ = cache.access(0)
        assert not hit
        hit, _ = cache.access(0)
        assert hit

    def test_same_line_different_words_hit(self):
        cache = small_cache()
        cache.access(0)
        hit, _ = cache.access(63)
        assert hit

    def test_adjacent_lines_are_distinct(self):
        cache = small_cache()
        cache.access(0)
        hit, _ = cache.access(64)
        assert not hit

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)


class TestLru:
    def test_eviction_follows_lru_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)      # line A
        cache.access(64)     # line B
        cache.access(128)    # line C evicts A (LRU)
        assert not cache.probe(0)
        assert cache.probe(64)
        assert cache.probe(128)

    def test_touch_refreshes_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)      # A
        cache.access(64)     # B
        cache.access(0)      # touch A: B is now LRU
        cache.access(128)    # C evicts B
        assert cache.probe(0)
        assert not cache.probe(64)

    def test_probe_does_not_disturb_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(64)
        cache.probe(0)       # must NOT refresh A
        cache.access(128)    # evicts A (still LRU)
        assert not cache.probe(0)


class TestWritebacks:
    def test_clean_eviction_returns_no_victim(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=False)
        _, victim = cache.access(64)
        assert victim is None

    def test_dirty_eviction_returns_victim_address(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        _, victim = cache.access(64)
        assert victim == 0
        assert cache.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=False)
        cache.access(0, is_write=True)
        _, victim = cache.access(64)
        assert victim == 0

    def test_dirty_bit_survives_read_touch(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, is_write=True)
        cache.access(0, is_write=False)
        _, victim = cache.access(64)
        assert victim == 0


class TestMaintenance:
    def test_invalidate(self):
        cache = small_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_flush(self):
        cache = small_cache()
        for i in range(4):
            cache.access(i * 64)
        cache.flush()
        assert cache.resident_lines == 0

    def test_resident_lines(self):
        cache = small_cache(ways=2, sets=4)
        for i in range(3):
            cache.access(i * 64)
        assert cache.resident_lines == 3


class TestSetMapping:
    def test_lines_map_to_distinct_sets(self):
        cache = small_cache(ways=1, sets=4)
        # Four consecutive lines fill four different sets: no evictions.
        for i in range(4):
            cache.access(i * 64)
        assert cache.resident_lines == 4

    def test_set_conflict_with_stride(self):
        cache = small_cache(ways=1, sets=4)
        cache.access(0)
        cache.access(4 * 64)   # same set (stride = sets * line)
        assert not cache.probe(0)
