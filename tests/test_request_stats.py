"""Unit tests for MemoryRequest and the statistics containers."""

import pytest

from repro.sim.request import MemoryRequest
from repro.sim.stats import CoreStats, SystemStats


class TestMemoryRequest:
    def test_unique_ids(self):
        a = MemoryRequest(core_id=0, address=0)
        b = MemoryRequest(core_id=0, address=0)
        assert a.req_id != b.req_id

    def test_latency_accessors(self):
        request = MemoryRequest(core_id=0, address=64, l1_miss_cycle=10)
        request.issue_cycle = 25
        request.mc_arrival_cycle = 60
        request.dram_start_cycle = 100
        request.complete_cycle = 150
        assert request.shaper_delay == 15
        assert request.queue_delay == 40
        assert request.total_latency == 140

    def test_defaults(self):
        request = MemoryRequest(core_id=2, address=128)
        assert not request.is_write
        assert request.shaper_bin == -1


class TestCoreStats:
    def test_histograms_bucketed(self):
        stats = CoreStats(core_id=0)
        stats.record_interarrival(0)
        stats.record_interarrival(9)
        stats.record_interarrival(10)
        assert stats.interarrival == {0: 2, 1: 1}

    def test_mem_histogram_independent(self):
        stats = CoreStats(core_id=0)
        stats.record_interarrival(5)
        stats.record_mem_interarrival(25)
        assert stats.interarrival == {0: 1}
        assert stats.mem_interarrival == {2: 1}

    def test_custom_bucket_width(self):
        stats = CoreStats(core_id=0)
        stats.record_interarrival(30, bucket_width=20)
        assert stats.interarrival == {1: 1}

    def test_average_latency(self):
        stats = CoreStats(core_id=0)
        assert stats.average_latency == 0.0
        stats.dram_requests = 4
        stats.total_latency = 400
        assert stats.average_latency == 100.0

    def test_l1_miss_rate(self):
        stats = CoreStats(core_id=0)
        assert stats.l1_miss_rate == 0.0
        stats.accesses = 10
        stats.l1_misses = 3
        assert stats.l1_miss_rate == pytest.approx(0.3)

    def test_snapshot_and_delta(self):
        stats = CoreStats(core_id=0)
        stats.accesses = 5
        before = stats.snapshot()
        stats.accesses = 9
        stats.work_cycles = 100
        after = stats.snapshot()
        delta = CoreStats.delta(after, before)
        assert delta["accesses"] == 4
        assert delta["work_cycles"] == 100

    def test_snapshot_keys_stable(self):
        stats = CoreStats(core_id=0)
        snap = stats.snapshot()
        assert {"accesses", "dram_requests", "work_cycles",
                "shaper_stall_cycles", "post_shaper_latency"} <= set(snap)


class TestSystemStats:
    def make(self):
        return SystemStats(cores=[CoreStats(core_id=0),
                                  CoreStats(core_id=1)])

    def test_total_dram_includes_writebacks(self):
        stats = self.make()
        stats.cores[0].dram_requests = 3
        stats.cores[1].writebacks = 2
        assert stats.total_dram_requests == 5

    def test_row_hit_rate(self):
        stats = self.make()
        assert stats.row_hit_rate == 0.0
        stats.row_hits = 3
        stats.row_misses = 1
        assert stats.row_hit_rate == pytest.approx(0.75)

    def test_bandwidth(self):
        stats = self.make()
        stats.cores[0].dram_requests = 100
        stats.cycles = 6400
        assert stats.bandwidth_bytes_per_cycle() == pytest.approx(1.0)

    def test_bandwidth_zero_cycles(self):
        assert self.make().bandwidth_bytes_per_cycle() == 0.0

    def test_core_accessor(self):
        stats = self.make()
        assert stats.core(1).core_id == 1
