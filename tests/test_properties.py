"""Property-based tests (hypothesis) for core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bins import BinConfig, BinSpec
from repro.core.config_space import matches_static, repair_to_constraints
from repro.core.credits import CreditState
from repro.core.pricing import config_price_core_equivalents
from repro.core.replenish import RateReplenisher, ResetReplenisher
from repro.core.shaper import MittsShaper
from repro.sim.cache import Cache, CacheGeometry
from repro.sim.engine import Engine


credit_vectors = st.lists(st.integers(min_value=0, max_value=64),
                          min_size=10, max_size=10)
nonzero_vectors = credit_vectors.filter(lambda v: sum(v) > 0)


class TestBinConfigProperties:
    @given(nonzero_vectors)
    def test_average_interval_within_bin_range(self, credits):
        config = BinConfig.from_credits(credits)
        spec = config.spec
        assert spec.center(0) <= config.average_interval() \
            <= spec.center(spec.num_bins - 1)

    @given(nonzero_vectors)
    def test_bandwidth_interval_identity(self, credits):
        """B_avg * I_avg == line_bytes within rounding error."""
        config = BinConfig.from_credits(credits)
        product = config.average_bandwidth() * config.average_interval()
        assert abs(product - 64) < 2.0

    @given(nonzero_vectors, st.floats(min_value=0.1, max_value=3.0))
    def test_scaled_stays_valid(self, credits, factor):
        config = BinConfig.from_credits(credits).scaled(factor)
        assert all(0 <= c <= config.spec.max_credits
                   for c in config.credits)

    @given(nonzero_vectors)
    def test_price_non_negative_and_finite(self, credits):
        config = BinConfig.from_credits(credits)
        price = config_price_core_equivalents(config)
        assert 0.0 <= price < 1e9


class TestCreditStateProperties:
    @given(nonzero_vectors, st.integers(min_value=0, max_value=9))
    def test_deductible_bin_never_slower_than_request(self, credits,
                                                      bin_index):
        state = CreditState(BinConfig.from_credits(credits))
        found = state.find_deductible(bin_index)
        if found is not None:
            assert found <= bin_index
            assert state.counts[found] > 0

    @given(nonzero_vectors, st.lists(st.integers(0, 9), max_size=40))
    def test_counts_never_negative_or_above_limit(self, credits, ops):
        config = BinConfig.from_credits(credits)
        state = CreditState(config)
        for op in ops:
            source = state.find_deductible(op)
            if source is not None:
                state.deduct(source)
            state.refund(op)
        for count, limit in zip(state.counts, config.credits):
            assert 0 <= count <= limit


class TestShaperProperties:
    @given(nonzero_vectors, st.integers(min_value=1, max_value=60),
           st.integers(min_value=0, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_release_budget_never_exceeded(self, credits, demand_gap,
                                           phase):
        """Whatever the demand pattern, releases over k periods never
        exceed k+1 periods' worth of credits."""
        config = BinConfig.from_credits(credits)
        shaper = MittsShaper(config, phase=phase)
        period = config.replenish_period()
        horizon = 20 * period
        now, releases = 0, 0
        while now <= horizon:
            release = shaper.earliest_issue(now)
            if release is None or release > horizon:
                break
            shaper.issue(release, req_id=releases)
            releases += 1
            now = release + demand_gap
        budget = config.total_credits * (horizon // period + 2)
        assert releases <= budget

    @given(nonzero_vectors, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_earliest_issue_always_found_for_live_config(self, credits,
                                                         now):
        shaper = MittsShaper(BinConfig.from_credits(credits))
        release = shaper.earliest_issue(now)
        assert release is not None
        assert release >= now

    @given(nonzero_vectors)
    @settings(max_examples=30, deadline=None)
    def test_probing_does_not_mutate_state(self, credits):
        """Speculative probes (at times before the next boundary) must not
        advance the live replenishment clock or credit counters, even when
        the *answer* lies beyond several future boundaries."""
        shaper = MittsShaper(BinConfig.from_credits(credits))
        shaper.issue(0, req_id=0)
        counts_before = shaper.credit_counts()
        boundary_before = shaper.replenisher.next_boundary()
        for now in (0, 1, min(3, boundary_before - 1)):
            shaper.earliest_issue(now)
        assert shaper.credit_counts() == counts_before
        assert shaper.replenisher.next_boundary() == boundary_before


class TestReplenishProperties:
    @given(nonzero_vectors, st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_drip_budget_matches_reset_per_period(self, credits, slices):
        """Over one full period both policies add exactly K_i credits."""
        config = BinConfig.from_credits(credits)
        drip_state = CreditState(config)
        drip_state.counts = [0] * 10
        drip = RateReplenisher(config, slices=slices)
        drip.apply_until(drip_state, drip.period + drip._slice_period)
        assert drip_state.counts == list(config.credits)

    @given(nonzero_vectors, st.integers(min_value=0, max_value=100_000))
    def test_reset_clock_always_ahead(self, credits, now):
        config = BinConfig.from_credits(credits)
        state = CreditState(config)
        policy = ResetReplenisher(config)
        policy.apply_until(state, now)
        assert policy.next_boundary() > now


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=200))
    def test_occupancy_bounded_by_capacity(self, lines):
        cache = Cache(CacheGeometry(size_bytes=1024, ways=2))
        for line in lines:
            cache.access(line * 64)
        assert cache.resident_lines <= 16  # 1024 / 64

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=100))
    def test_immediate_retouch_always_hits(self, lines):
        cache = Cache(CacheGeometry(size_bytes=4096, ways=4))
        for line in lines:
            cache.access(line * 64)
            hit, _ = cache.access(line * 64)
            assert hit

    @given(st.lists(st.integers(min_value=0, max_value=1023), min_size=1,
                    max_size=300))
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = Cache(CacheGeometry(size_bytes=2048, ways=2))
        for line in lines:
            cache.access(line * 64)
        assert cache.hits + cache.misses == len(lines)


class TestRepairProperties:
    @given(credit_vectors,
           st.sampled_from([35.0, 45.0, 55.0, 65.0]),
           st.integers(min_value=8, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_repair_satisfies_constraints(self, credits, interval, total):
        spec = BinSpec()
        config = repair_to_constraints(credits, spec, interval, total)
        assert matches_static(config, interval, total,
                              interval_tolerance=0.35,
                              credit_tolerance=0.05)


class TestEngineProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=60))
    def test_events_observed_in_sorted_order(self, times):
        engine = Engine()
        observed = []
        for when in times:
            engine.schedule(when, lambda: observed.append(engine.now))
        engine.run()
        assert observed == sorted(times)
