"""Checkpoint/restore: resumed runs must be bit-identical.

The oracle is the golden-fingerprint set: each golden mix is run to its
halfway point, checkpointed, restored from disk, and run to completion --
the final fingerprint must equal the recorded golden hash exactly, with
contracts both off and on.  The format tests prove a damaged checkpoint
is *rejected* (``CheckpointError``), never silently half-loaded.
"""

import os
from dataclasses import replace

import pytest

from repro.analysis import contracts
from repro.core.bins import BinConfig
from repro.core.shaper import MittsShaper
from repro.resilience.checkpoint import (CHECKPOINT_VERSION, CheckpointError,
                                         checkpoint_scope,
                                         discard_checkpoint,
                                         job_checkpoint_path,
                                         load_checkpoint,
                                         read_checkpoint_meta,
                                         run_with_checkpoints,
                                         save_checkpoint)
from repro.sched.base import FcfsScheduler, FrFcfsScheduler
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.mixes import workload_traces

from tests.test_golden_fingerprints import (GOLDEN_CYCLES, GOLDEN_MIX_NOC,
                                            GOLDEN_MIX_SIMPLE,
                                            GOLDEN_MIX_WINDOW_SHAPED)

HALFWAY = GOLDEN_CYCLES // 2


def build_mix_simple() -> SimSystem:
    return SimSystem(workload_traces(1, seed=11),
                     config=SCALED_MULTI_CONFIG)


def build_mix_window_shaped() -> SimSystem:
    traces = workload_traces(2, seed=22)
    config = replace(SCALED_MULTI_CONFIG, core_model="window")
    credits = [4, 4, 3, 3, 2, 2, 1, 1, 1, 1]
    limiters = [MittsShaper(BinConfig.from_credits(credits), phase=17 * i)
                for i in range(len(traces))]
    return SimSystem(traces, config=config, limiters=limiters,
                     scheduler=FrFcfsScheduler(len(traces)))


def build_mix_noc() -> SimSystem:
    traces = workload_traces(3, seed=33)
    config = replace(SCALED_MULTI_CONFIG, noc_enabled=True)
    return SimSystem(traces, config=config,
                     scheduler=FcfsScheduler(len(traces)))


GOLDEN_MIXES = [
    pytest.param(build_mix_simple, GOLDEN_MIX_SIMPLE, id="simple"),
    pytest.param(build_mix_window_shaped, GOLDEN_MIX_WINDOW_SHAPED,
                 id="window-shaped"),
    pytest.param(build_mix_noc, GOLDEN_MIX_NOC, id="noc"),
]


def _small_system() -> SimSystem:
    return build_mix_simple()


@pytest.mark.slow
class TestGoldenResume:
    @pytest.mark.parametrize("build, golden", GOLDEN_MIXES)
    def test_resume_reproduces_golden(self, build, golden, tmp_path):
        path = tmp_path / "half.ckpt"
        system = build()
        system.run(HALFWAY)
        system.save_checkpoint(path)
        del system

        resumed = SimSystem.load_checkpoint(path)
        assert resumed.engine.now == HALFWAY
        resumed.run(GOLDEN_CYCLES - HALFWAY)
        assert resumed.stats.fingerprint() == golden

    def test_resume_reproduces_golden_with_contracts(self, tmp_path):
        path = tmp_path / "half.ckpt"
        with contracts.enabled_scope():
            system = build_mix_window_shaped()
            system.run(HALFWAY)
            save_checkpoint(system, path)
            resumed = load_checkpoint(path)
            resumed.run(GOLDEN_CYCLES - HALFWAY)
            assert resumed.stats.fingerprint() == GOLDEN_MIX_WINDOW_SHAPED

    def test_load_refreshes_engine_contracts_flag(self, tmp_path):
        # Saved with contracts off, loaded with contracts on: the engine
        # must run the checked path (its captured flag is stale).
        path = tmp_path / "toggle.ckpt"
        with contracts.enabled_scope(False):
            system = _small_system()
            system.run(1_000)
            save_checkpoint(system, path)
        with contracts.enabled_scope(True):
            resumed = load_checkpoint(path)
            assert resumed.engine._contracts is True
        with contracts.enabled_scope(False):
            resumed = load_checkpoint(path)
            assert resumed.engine._contracts is False


class TestCheckpointFormat:
    def test_meta_readable_without_unpickling(self, tmp_path):
        path = tmp_path / "meta.ckpt"
        system = _small_system()
        system.run(2_000)
        save_checkpoint(system, path)
        meta = read_checkpoint_meta(path)
        assert meta["version"] == CHECKPOINT_VERSION
        assert meta["cycle"] == 2_000
        assert meta["cores"] == len(system.cores)
        assert meta["pending_events"] == system.engine.pending_events

    def test_corrupted_body_rejected(self, tmp_path):
        path = tmp_path / "corrupt.ckpt"
        system = _small_system()
        system.run(1_000)
        save_checkpoint(system, path)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint"
        path.write_bytes(b"definitely not a checkpoint\n")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint_meta(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "never-written.ckpt")

    def test_version_mismatch_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "future.ckpt"
        system = _small_system()
        system.run(500)
        import repro.resilience.checkpoint as checkpoint_module
        monkeypatch.setattr(checkpoint_module, "CHECKPOINT_VERSION", 999)
        save_checkpoint(system, path)
        monkeypatch.undo()
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_unpicklable_system_raises_checkpoint_error(self, tmp_path):
        system = _small_system()
        system.run(100)
        # a lambda in the event heap cannot pickle
        system.engine.schedule_in(1, lambda: None)
        with pytest.raises(CheckpointError, match="not checkpointable"):
            save_checkpoint(system, tmp_path / "nope.ckpt")
        assert not (tmp_path / "nope.ckpt").exists()

    def test_discard_is_none_safe_and_idempotent(self, tmp_path):
        discard_checkpoint(None)
        path = tmp_path / "gone.ckpt"
        path.write_bytes(b"x")
        discard_checkpoint(path)
        assert not path.exists()
        discard_checkpoint(path)  # already gone: still fine


class TestRunWithCheckpoints:
    def test_chunked_run_matches_straight_run(self, tmp_path):
        straight = _small_system()
        straight.run(10_000)
        expected = straight.stats.fingerprint()

        path = tmp_path / "periodic.ckpt"
        system = run_with_checkpoints(_small_system, 10_000, path=path,
                                      interval=3_000)
        assert system.stats.fingerprint() == expected
        # The last periodic save (cycle 9_000) is left for the caller.
        assert read_checkpoint_meta(path)["cycle"] == 9_000

    def test_resumes_from_existing_checkpoint(self, tmp_path):
        path = tmp_path / "resume.ckpt"
        half = _small_system()
        half.run(6_000)
        save_checkpoint(half, path)

        calls = []

        def tracked_make():
            calls.append(1)
            return _small_system()

        system = run_with_checkpoints(tracked_make, 10_000, path=path,
                                      interval=50_000)
        assert calls == []  # resumed, never rebuilt from scratch
        straight = _small_system()
        straight.run(10_000)
        assert system.stats.fingerprint() == straight.stats.fingerprint()

    def test_corrupt_checkpoint_discarded_and_restarted(self, tmp_path):
        path = tmp_path / "rotted.ckpt"
        half = _small_system()
        half.run(6_000)
        save_checkpoint(half, path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))

        system = run_with_checkpoints(_small_system, 10_000, path=path,
                                      interval=50_000)
        straight = _small_system()
        straight.run(10_000)
        assert system.stats.fingerprint() == straight.stats.fingerprint()

    def test_no_path_runs_without_saving(self, tmp_path):
        system = run_with_checkpoints(_small_system, 5_000, interval=1_000)
        assert system.engine.now == 5_000
        assert list(tmp_path.iterdir()) == []

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            run_with_checkpoints(_small_system, 1_000, interval=0)


class TestAmbientCheckpointPath:
    def test_scope_publishes_and_restores(self):
        assert job_checkpoint_path() is None
        with checkpoint_scope("/tmp/a.ckpt"):
            assert job_checkpoint_path() == "/tmp/a.ckpt"
            with checkpoint_scope(None):
                assert job_checkpoint_path() is None
            assert job_checkpoint_path() == "/tmp/a.ckpt"
        assert job_checkpoint_path() is None

    def test_run_with_checkpoints_uses_ambient_path(self, tmp_path):
        path = tmp_path / "ambient.ckpt"
        with checkpoint_scope(str(path)):
            run_with_checkpoints(_small_system, 8_000, interval=3_000)
        assert path.exists()
        assert read_checkpoint_meta(path)["cycle"] == 6_000
