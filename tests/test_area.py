"""Unit tests for the hardware cost model."""

import pytest

from repro.core.area import (MittsAreaModel, PUBLISHED_AREA_MM2,
                             PUBLISHED_CORE_FRACTION)
from repro.core.bins import BinSpec


class TestBitInventory:
    def test_credit_registers_are_ten_bits(self):
        """max 1024 credits -> 10-bit registers, as in the tape-out."""
        assert MittsAreaModel().credit_register_bits == 10

    def test_bin_storage_two_registers_per_bin(self):
        model = MittsAreaModel()
        inventory = model.inventory()
        assert inventory["bin_storage_bits"] == 10 * 2 * 10

    def test_pending_table_sized_by_mshrs(self):
        model = MittsAreaModel(pending_entries=8)
        # 8 entries x ceil(log2(10 bins)) = 8 x 4 bits
        assert model.inventory()["pending_table_bits"] == 32

    def test_storage_grows_with_bins(self):
        small = MittsAreaModel(spec=BinSpec(num_bins=4))
        large = MittsAreaModel(spec=BinSpec(num_bins=16))
        assert large.storage_bits > small.storage_bits

    def test_interarrival_counter_covers_bin_span(self):
        model = MittsAreaModel()
        # span = 100 cycles -> 7 bits
        assert model.interarrival_counter_bits == 7


class TestCalibration:
    def test_default_matches_published_area(self):
        model = MittsAreaModel()
        assert model.area_mm2() == pytest.approx(PUBLISHED_AREA_MM2)

    def test_default_matches_published_core_fraction(self):
        model = MittsAreaModel()
        assert model.core_fraction() == pytest.approx(
            PUBLISHED_CORE_FRACTION)

    def test_core_fraction_below_paper_bound(self):
        assert MittsAreaModel().core_fraction() <= 0.009 + 1e-9

    def test_fewer_bins_cost_less(self):
        four = MittsAreaModel(spec=BinSpec(num_bins=4))
        assert four.area_mm2() < PUBLISHED_AREA_MM2

    def test_explicit_core_area(self):
        model = MittsAreaModel()
        assert model.core_fraction(core_area_mm2=1.0) == pytest.approx(
            model.area_mm2())

    def test_inventory_totals_consistent(self):
        model = MittsAreaModel()
        inventory = model.inventory()
        expected = (inventory["bin_storage_bits"]
                    + inventory["pending_table_bits"]
                    + inventory["period_counter_bits"]
                    + inventory["interarrival_counter_bits"]
                    + inventory["logic_equivalent_bits"])
        assert inventory["total_bits"] == expected
