"""Forward-progress watchdog: bit-neutral when healthy, loud when starved.

Neutrality is pinned against the golden fingerprints (a watchdog that
perturbs event order would change the hash), in both contract modes.
Starvation detection is exercised with genuinely degenerate shaper
configurations, and the tuning layer's conversion of a starved run into
a penalised-but-finite fitness is proven end to end.
"""

import pytest

from repro.analysis import contracts
from repro.core.bins import BinConfig, BinSpec
from repro.core.config_space import (validate_bin_config,
                                     validate_credit_vector)
from repro.core.shaper import MittsShaper
from repro.resilience.watchdog import StarvationError, WatchdogConfig
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.tuning.ga import GaParams, GaResult, GeneticAlgorithm
from repro.tuning.genome import validate_genome
from repro.tuning.objectives import (STARVATION_FITNESS, FitnessEvaluator,
                                     performance_objective)
from repro.workloads.mixes import workload_traces

from tests.test_golden_fingerprints import (GOLDEN_CYCLES,
                                            GOLDEN_MIX_SIMPLE,
                                            GOLDEN_MIX_WINDOW_SHAPED)
from tests.test_resilience_checkpoint import (build_mix_simple,
                                              build_mix_window_shaped)

#: tight window so starvation tests stay cheap
FAST_WATCHDOG = WatchdogConfig(check_period=1_000, stall_threshold=8_000)


def _zero_credit_system() -> SimSystem:
    traces = workload_traces(1, seed=11)
    limiters = [MittsShaper(BinConfig.from_credits([0] * 10))
                for _ in traces]
    return SimSystem(traces, config=SCALED_MULTI_CONFIG, limiters=limiters)


@pytest.mark.slow
class TestBitNeutrality:
    @pytest.mark.parametrize("checked", [False, True],
                             ids=["contracts-off", "contracts-on"])
    @pytest.mark.parametrize("build, golden", [
        pytest.param(build_mix_simple, GOLDEN_MIX_SIMPLE, id="simple"),
        pytest.param(build_mix_window_shaped, GOLDEN_MIX_WINDOW_SHAPED,
                     id="window-shaped"),
    ])
    def test_watchdog_preserves_golden_fingerprint(self, build, golden,
                                                   checked):
        with contracts.enabled_scope(checked):
            system = build()
            system.attach_watchdog()
            system.run(GOLDEN_CYCLES)
            assert system.stats.fingerprint() == golden


class TestStarvationDetection:
    def test_zero_credit_shapers_raise_within_window(self):
        system = _zero_credit_system()
        system.attach_watchdog(FAST_WATCHDOG)
        with pytest.raises(StarvationError) as excinfo:
            system.run(60_000)
        # Detected within threshold + one check period of the stall onset.
        window = (FAST_WATCHDOG.stall_threshold
                  + 2 * FAST_WATCHDOG.check_period)
        assert excinfo.value.diagnostics["cycle"] <= window

    def test_diagnostics_explain_the_stall(self):
        system = _zero_credit_system()
        system.attach_watchdog(FAST_WATCHDOG)
        with pytest.raises(StarvationError) as excinfo:
            system.run(60_000)
        diag = excinfo.value.diagnostics
        assert set(diag) == {"cycle", "cores", "mc"}
        for core in diag["cores"]:
            assert core["stall_age"] >= FAST_WATCHDOG.stall_threshold
            assert core["port_occupancy"] > 0 or core["outstanding_misses"] > 0
            assert core["shaper"]["stall_forever"] is True
            assert core["shaper"]["credits"] == [0] * 10
        assert diag["mc"]["dispatched"] == 0

    def test_starvation_error_survives_pickling(self):
        import pickle

        error = StarvationError("starved", {"cycle": 9_000, "cores": []})
        clone = pickle.loads(pickle.dumps(error))
        assert str(clone) == "starved"
        assert clone.diagnostics == {"cycle": 9_000, "cores": []}

    def test_healthy_run_with_tight_watchdog_stays_quiet(self):
        system = build_mix_simple()
        system.attach_watchdog(FAST_WATCHDOG)
        system.run(40_000)  # no exception: progress is continuous

    def test_detach_stops_future_checks(self):
        system = _zero_credit_system()
        watchdog = system.attach_watchdog(FAST_WATCHDOG)
        watchdog.detach()
        system.run(30_000)  # would have raised at ~9000 if still armed

    def test_reattach_replaces_previous_watchdog(self):
        system = _zero_credit_system()
        first = system.attach_watchdog(FAST_WATCHDOG)
        second = system.attach_watchdog(FAST_WATCHDOG)
        assert system.watchdog is second and first is not second
        with pytest.raises(StarvationError):
            system.run(60_000)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(check_period=0)
        with pytest.raises(ValueError):
            WatchdogConfig(check_period=100, stall_threshold=50)


class TestConfigValidation:
    SPEC = BinSpec()

    def test_all_zero_rejected_naming_bins(self):
        with pytest.raises(ValueError, match="zero credits"):
            validate_credit_vector([0] * self.SPEC.num_bins, self.SPEC)

    def test_unreachable_bins_rejected_by_index(self):
        vector = [1] * (self.SPEC.num_bins + 2)
        with pytest.raises(ValueError, match=r"unreachable") as excinfo:
            validate_credit_vector(vector, self.SPEC)
        assert f"[{self.SPEC.num_bins}, {self.SPEC.num_bins + 1}]" \
            in str(excinfo.value)

    def test_short_vector_rejected(self):
        with pytest.raises(ValueError, match="unconfigured"):
            validate_credit_vector([1] * (self.SPEC.num_bins - 1),
                                   self.SPEC)

    def test_negative_bins_named(self):
        vector = [1] * self.SPEC.num_bins
        vector[3] = -1
        vector[7] = -2
        with pytest.raises(ValueError, match=r"\[3, 7\]"):
            validate_credit_vector(vector, self.SPEC)

    def test_over_limit_bins_named(self):
        vector = [1] * self.SPEC.num_bins
        vector[2] = self.SPEC.max_credits + 1
        with pytest.raises(ValueError, match=r"\[2\]"):
            validate_credit_vector(vector, self.SPEC)

    def test_valid_config_passes_through(self):
        config = BinConfig.from_credits([1] * self.SPEC.num_bins)
        assert validate_bin_config(config) is config

    def test_genome_errors_aggregate_across_cores(self):
        good = BinConfig.from_credits([1] * self.SPEC.num_bins)
        bad = BinConfig.from_credits([0] * self.SPEC.num_bins)
        with pytest.raises(ValueError) as excinfo:
            validate_genome([good, bad, bad])
        message = str(excinfo.value)
        assert "core 1" in message and "core 2" in message
        assert "core 0" not in message

    def test_empty_genome_rejected(self):
        with pytest.raises(ValueError, match="at least one core"):
            validate_genome([])


class TestTuningIntegration:
    def _evaluator(self, **overrides) -> FitnessEvaluator:
        defaults = dict(traces=workload_traces(1, seed=11),
                        system_config=SCALED_MULTI_CONFIG,
                        run_cycles=20_000,
                        objective=performance_objective,
                        watchdog=FAST_WATCHDOG)
        defaults.update(overrides)
        return FitnessEvaluator(**defaults)

    def test_starved_genome_scores_penalty_not_crash(self):
        evaluator = self._evaluator()
        zero = BinConfig.from_credits([0] * 10)
        genome = [zero for _ in range(len(evaluator.traces))]
        fitness = evaluator(genome)
        assert fitness == STARVATION_FITNESS
        assert evaluator.starvations == 1
        assert evaluator.evaluations == 1

    def test_live_genome_beats_starved_one(self):
        evaluator = self._evaluator()
        live = BinConfig.from_credits([8] + [2] * 9)
        fitness = evaluator([live for _ in range(len(evaluator.traces))])
        assert fitness > STARVATION_FITNESS
        assert evaluator.starvations == 0

    def test_ga_rejects_degenerate_seed_genomes(self):
        spec = BinSpec()
        zero = BinConfig.from_credits([0] * spec.num_bins)
        with pytest.raises(ValueError, match="core 0"):
            GeneticAlgorithm(fitness=lambda genome: 0.0, spec=spec,
                             num_cores=2,
                             seed_genomes=[[zero, zero]])

    def test_ga_survives_universally_starved_fitness(self):
        spec = BinSpec()

        def always_starves(genome):
            raise StarvationError("injected", {"cycle": 0})

        ga = GeneticAlgorithm(fitness=always_starves, spec=spec,
                              num_cores=1,
                              params=GaParams(generations=2, population=4,
                                              elite=1, seed=3))
        result = ga.run()
        assert isinstance(result, GaResult)
        assert result.best_fitness == STARVATION_FITNESS
        assert result.penalized == result.evaluations > 0
