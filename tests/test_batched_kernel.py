"""Heap-vs-batched kernel equivalence on full systems.

The golden-fingerprint suite pins both kernels to recorded hashes; these
tests assert the stronger property directly -- the complete
:meth:`~repro.sim.stats.SystemStats.snapshot` documents are *equal*
between kernels, so a divergence points at the exact statistic instead of
an opaque hash mismatch.  They also cover the batched kernel's config
surface (validation, checkpointing) that the goldens don't touch.
"""

from dataclasses import replace

import pytest

from repro.core.bins import BinConfig
from repro.core.shaper import MittsShaper
from repro.sched.base import FrFcfsScheduler
from repro.sim.engine import Engine
from repro.sim.system import (SCALED_MULTI_CONFIG, SCALED_SINGLE_CONFIG,
                              SimSystem)
from repro.sim.wheel import WheelEngine
from repro.workloads.benchmarks import trace_for
from repro.workloads.mixes import workload_traces

CYCLES = 60_000


def _shaped_system(kernel: str, phase_stride: int = 0) -> SimSystem:
    traces = workload_traces(2, seed=5)
    config = replace(SCALED_MULTI_CONFIG, kernel=kernel)
    credits = [4, 4, 3, 3, 2, 2, 1, 1, 1, 1]
    limiters = [MittsShaper(BinConfig.from_credits(credits),
                            phase=phase_stride * i)
                for i in range(len(traces))]
    return SimSystem(traces, config=config, limiters=limiters,
                     scheduler=FrFcfsScheduler(len(traces)))


class TestKernelSelection:
    def test_batched_config_uses_wheel_engine(self):
        system = SimSystem(workload_traces(1, seed=3),
                           config=SCALED_MULTI_CONFIG)
        assert isinstance(system.engine, WheelEngine)

    def test_heap_config_uses_heap_engine(self):
        config = replace(SCALED_MULTI_CONFIG, kernel="heap")
        system = SimSystem(workload_traces(1, seed=3), config=config)
        assert isinstance(system.engine, Engine)

    def test_unknown_kernel_rejected(self):
        config = replace(SCALED_MULTI_CONFIG, kernel="quantum")
        with pytest.raises(ValueError, match="kernel"):
            SimSystem(workload_traces(1, seed=3), config=config)

    def test_unknown_macro_tick_mode_rejected(self):
        config = replace(SCALED_MULTI_CONFIG, macro_tick="sometimes")
        with pytest.raises(ValueError, match="macro_tick"):
            SimSystem(workload_traces(1, seed=3), config=config)


class TestSnapshotEquality:
    """Full snapshot documents match between kernels, field for field."""

    def _run_pair(self, build):
        snapshots = {}
        for kernel in ("heap", "batched"):
            system = build(kernel)
            system.run(CYCLES)
            snapshots[kernel] = system.stats.snapshot()
        return snapshots

    def test_unshaped_multi(self):
        def build(kernel):
            config = replace(SCALED_MULTI_CONFIG, kernel=kernel)
            return SimSystem(workload_traces(1, seed=5), config=config)

        snapshots = self._run_pair(build)
        assert snapshots["heap"] == snapshots["batched"]

    def test_single_core(self):
        def build(kernel):
            config = replace(SCALED_SINGLE_CONFIG, kernel=kernel)
            return SimSystem([trace_for("mcf", seed=5)], config=config)

        snapshots = self._run_pair(build)
        assert snapshots["heap"] == snapshots["batched"]

    def test_shaped_aligned_phases(self):
        # Aligned phases make the macro-tick pump eligible under the
        # batched kernel, so this pair exercises pump-vs-lazy on top of
        # wheel-vs-heap.
        snapshots = self._run_pair(lambda k: _shaped_system(k))
        assert snapshots["heap"] == snapshots["batched"]

    def test_shaped_staggered_phases(self):
        # Staggered phases (anti-lockstep) have no common boundary: the
        # pump must stay off and the lazy path must still match the heap.
        snapshots = self._run_pair(
            lambda k: _shaped_system(k, phase_stride=17))
        assert snapshots["heap"] == snapshots["batched"]

    def test_events_executed_matches(self):
        counts = {}
        for kernel in ("heap", "batched"):
            config = replace(SCALED_MULTI_CONFIG, kernel=kernel)
            system = SimSystem(workload_traces(1, seed=5), config=config)
            system.run(CYCLES)
            counts[kernel] = system.engine.events_executed
        assert counts["heap"] == counts["batched"]


class TestBatchedCheckpoint:
    def test_roundtrip_reproduces_uninterrupted_run(self, tmp_path):
        config = replace(SCALED_MULTI_CONFIG, kernel="batched")
        reference = SimSystem(workload_traces(1, seed=5), config=config)
        reference.run(CYCLES)

        system = SimSystem(workload_traces(1, seed=5), config=config)
        system.run(CYCLES // 2)
        path = tmp_path / "batched.ckpt"
        system.save_checkpoint(path)
        resumed = SimSystem.load_checkpoint(path)
        resumed.run(CYCLES - CYCLES // 2)
        assert resumed.stats.snapshot() == reference.stats.snapshot()

    def test_shaped_roundtrip_matches_heap(self, tmp_path):
        # Checkpoint mid-window with the pump scheduled, restore, run to
        # the horizon: the result must still equal the heap kernel's.
        heap_system = _shaped_system("heap")
        heap_system.run(CYCLES)

        system = _shaped_system("batched")
        system.run(CYCLES // 2)
        path = tmp_path / "shaped.ckpt"
        system.save_checkpoint(path)
        resumed = SimSystem.load_checkpoint(path)
        resumed.run(CYCLES - CYCLES // 2)
        assert resumed.stats.snapshot() == heap_system.stats.snapshot()
