"""Unit tests for the trace-driven core model and the shaper port."""

import pytest

from repro.core.limiter import NoLimiter, StaticLimiter
from repro.sim.cache import Cache, CacheGeometry
from repro.sim.core_model import CoreModel, ShaperPort
from repro.sim.engine import Engine
from repro.sim.stats import CoreStats
from repro.workloads.trace import ListTrace, TraceEvent, uniform_trace


class Harness:
    """A core wired to a sink instead of a real LLC."""

    def __init__(self, trace, limiter=None, mlp=4, l1_bytes=1024,
                 respond_after=None):
        self.engine = Engine()
        self.stats = CoreStats(core_id=0)
        self.sent = []
        self.respond_after = respond_after

        def send(request):
            self.sent.append(request)
            if self.respond_after is not None:
                self.engine.schedule_in(
                    self.respond_after,
                    lambda r=request: self.core.on_response(r))

        self.port = ShaperPort(self.engine, limiter or NoLimiter(),
                               send=send, stats=self.stats)
        l1 = Cache(CacheGeometry(size_bytes=l1_bytes, ways=2))
        self.core = CoreModel(0, self.engine, trace, l1, self.port,
                              self.stats, mlp=mlp)

    def run(self, cycles):
        self.core.start()
        self.engine.run(until=cycles)
        return self.stats


class TestTraceReplay:
    def test_work_cycles_accumulate(self):
        trace = ListTrace([TraceEvent(9, 0, False),
                           TraceEvent(9, 64, False)])
        harness = Harness(trace, respond_after=10)
        stats = harness.run(25)
        # Two events of 9 work + 1 access cycle each.
        assert stats.work_cycles >= 20

    def test_trace_wraps_when_exhausted(self):
        trace = ListTrace([TraceEvent(0, 0, False)])
        harness = Harness(trace, respond_after=1)
        harness.run(100)
        assert harness.core.wraps > 1

    def test_l1_hit_retires_without_traffic(self):
        trace = ListTrace([TraceEvent(1, 0, False)] * 10)
        harness = Harness(trace, respond_after=5)
        stats = harness.run(100)
        assert stats.l1_hits > 0
        # Only the first touch of line 0 leaves the core.
        demand = [r for r in harness.sent if r.shaper_bin != -2]
        assert len(demand) <= 1 + harness.core.wraps

    def test_throttle_multiplier_slows_core(self):
        trace = uniform_trace(count=50, gap=4)
        fast = Harness(trace, respond_after=5)
        fast_stats = fast.run(500)
        slow = Harness(trace, respond_after=5)
        slow.core.throttle_multiplier = 3.0
        slow_stats = slow.run(500)
        assert slow_stats.work_cycles < fast_stats.work_cycles


class TestMshrBehaviour:
    def test_core_blocks_at_mlp_limit(self):
        # No responses ever arrive: the core should stop after mlp misses.
        trace = uniform_trace(count=50, gap=0)
        harness = Harness(trace, mlp=3)
        harness.run(1000)
        demand = [r for r in harness.sent if r.shaper_bin != -2]
        assert len(demand) == 3
        assert len(harness.core.outstanding) == 3

    def test_response_unblocks_core(self):
        trace = uniform_trace(count=50, gap=0)
        harness = Harness(trace, mlp=2, respond_after=10)
        stats = harness.run(2000)
        demand = [r for r in harness.sent if r.shaper_bin != -2]
        assert len(demand) > 2
        assert stats.memory_stall_cycles > 0

    def test_secondary_miss_coalesces(self):
        # Two accesses to the same line while the first is outstanding.
        trace = ListTrace([TraceEvent(0, 0, False),
                           TraceEvent(0, 16, False),
                           TraceEvent(0, 640, False)])
        harness = Harness(trace, mlp=4, l1_bytes=128)
        harness.run(50)
        lines = [r.address // 64 for r in harness.sent
                 if r.shaper_bin != -2]
        assert lines.count(0) == 1


class TestShaperPort:
    def test_port_releases_in_order(self):
        trace = ListTrace([TraceEvent(0, i * 64, False) for i in range(4)])
        harness = Harness(trace, limiter=StaticLimiter(10), mlp=4)
        harness.run(200)
        cycles = [r.issue_cycle for r in harness.sent]
        assert cycles == sorted(cycles)

    def test_static_limiter_spacing_enforced(self):
        trace = ListTrace([TraceEvent(0, i * 64, False) for i in range(4)])
        harness = Harness(trace, limiter=StaticLimiter(10), mlp=4)
        harness.run(200)
        gaps = [b.issue_cycle - a.issue_cycle
                for a, b in zip(harness.sent, harness.sent[1:])]
        assert all(gap >= 10 for gap in gaps)

    def test_stall_cycles_attributed(self):
        trace = ListTrace([TraceEvent(0, i * 64, False) for i in range(4)])
        harness = Harness(trace, limiter=StaticLimiter(25), mlp=4)
        stats = harness.run(300)
        assert stats.shaper_stall_cycles > 0

    def test_interarrival_histogram_populated(self):
        trace = uniform_trace(count=20, gap=30)
        harness = Harness(trace, respond_after=5)
        stats = harness.run(2000)
        assert sum(stats.interarrival.values()) >= 10

    def test_bypass_skips_limiter(self):
        engine = Engine()
        stats = CoreStats(core_id=0)
        sent = []
        port = ShaperPort(engine, StaticLimiter(1000), send=sent.append,
                          stats=stats)
        from repro.sim.request import MemoryRequest
        writeback = MemoryRequest(core_id=0, address=0, is_write=True)
        writeback.shaper_bin = -2
        port.submit_bypass(writeback)
        assert sent  # released immediately despite the throttle

    def test_occupancy(self):
        engine = Engine()
        stats = CoreStats(core_id=0)
        port = ShaperPort(engine, StaticLimiter(100),
                          send=lambda r: None, stats=stats)
        from repro.sim.request import MemoryRequest
        port.submit(MemoryRequest(core_id=0, address=0))
        port.submit(MemoryRequest(core_id=0, address=64))
        assert port.occupancy == 1  # first released at time 0
