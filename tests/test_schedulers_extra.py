"""Unit tests for the related-work schedulers: STFM, PAR-BS, ATLAS."""

import pytest

from repro.dram.device import DramDevice
from repro.dram.timing import DramTiming
from repro.sched.atlas import AtlasScheduler
from repro.sched.parbs import ParbsScheduler
from repro.sched.stfm import StfmScheduler
from repro.sim.request import MemoryRequest
from repro.sim.system import SCALED_MULTI_CONFIG, SimSystem
from repro.workloads.mixes import workload_traces


class FakeController:
    def __init__(self):
        self.dram = DramDevice(DramTiming(refresh_enabled=False))


def request(core, address, arrival=0):
    req = MemoryRequest(core_id=core, address=address)
    req.mc_arrival_cycle = arrival
    return req


class TestStfm:
    def test_fair_mode_is_frfcfs(self):
        controller = FakeController()
        sched = StfmScheduler(2)
        # No history: unfairness 1.0 -> throughput mode, oldest first.
        a = request(0, 0, arrival=5)
        b = request(1, 8192, arrival=1)
        assert sched.select([a, b], 10, controller) is b

    def test_slowdown_tracking(self):
        controller = FakeController()
        sched = StfmScheduler(2)
        sched._baseline(controller)
        # Core 0 suffers long service; core 1 gets unloaded service.
        slow = request(0, 0, arrival=0)
        sched.on_complete(slow, now=1000)
        fast = request(1, 64, arrival=0)
        sched.on_complete(fast, now=int(sched._unloaded_latency))
        assert sched.slowdown(0) > sched.slowdown(1)
        assert sched.unfairness() > 1.0

    def test_prioritises_most_slowed_when_unfair(self):
        controller = FakeController()
        sched = StfmScheduler(2, alpha=1.05)
        sched._baseline(controller)
        for _ in range(10):
            victim = request(0, 0, arrival=0)
            sched.on_complete(victim, now=2000)
            lucky = request(1, 64, arrival=0)
            sched.on_complete(lucky, now=int(sched._unloaded_latency))
        queue = [request(1, 128, arrival=0), request(0, 192, arrival=50)]
        assert sched.select(queue, 100, controller).core_id == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StfmScheduler(2, alpha=1.0)
        with pytest.raises(ValueError):
            StfmScheduler(2, mlp=0)


class TestParbs:
    def test_batch_marks_and_serves_before_unmarked(self):
        controller = FakeController()
        sched = ParbsScheduler(2, cap=1)
        old_a = request(0, 0, arrival=0)
        old_b = request(1, 1 << 20, arrival=1)
        queue = [old_a, old_b]
        first = sched.select(queue, 10, controller)
        queue.remove(first)
        assert sched.batches_formed == 1
        # A newly arriving request is NOT in the batch; the remaining
        # marked request goes first even if the new one row-hits.
        newcomer = request(first.core_id, first.address + 64, arrival=11)
        queue.append(newcomer)
        second = sched.select(queue, 12, controller)
        assert second is not newcomer

    def test_cap_limits_marks_per_core_bank(self):
        controller = FakeController()
        sched = ParbsScheduler(1, cap=2)
        queue = [request(0, i * 64, arrival=i) for i in range(5)]
        sched._form_batch(queue, controller)
        assert len(sched._marked) == 2

    def test_shortest_job_ranked_first(self):
        controller = FakeController()
        sched = ParbsScheduler(2, cap=4)
        queue = [request(0, i * 64, arrival=i) for i in range(4)] \
            + [request(1, 1 << 20, arrival=10)]
        sched._form_batch(queue, controller)
        assert sched._rank[1] < sched._rank[0]

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            ParbsScheduler(2, cap=0)


class TestAtlas:
    def test_least_attained_ranked_first(self):
        controller = FakeController()
        sched = AtlasScheduler(2, quantum=100)
        heavy = request(0, 0)
        heavy.dram_start_cycle = 0
        for _ in range(20):
            sched.on_complete(heavy, now=50)
        sched.select([request(0, 0)], now=150, controller=controller)
        assert sched._order[0] == 1  # light thread first

    def test_decay_forgets_history(self):
        controller = FakeController()
        sched = AtlasScheduler(2, quantum=100, decay=0.5)
        heavy = request(0, 0)
        heavy.dram_start_cycle = 0
        for _ in range(20):
            sched.on_complete(heavy, now=50)
        sched.select([request(0, 0)], now=150, controller=controller)
        first = sched.attained[0]
        # Several idle quanta later the history has decayed.
        sched.select([request(0, 0)], now=850, controller=controller)
        assert sched.attained[0] < first

    def test_selects_highest_priority_backlogged(self):
        controller = FakeController()
        sched = AtlasScheduler(3, quantum=100)
        sched._order = [2, 0, 1]
        queue = [request(0, 0), request(1, 1 << 20)]
        assert sched.select(queue, 10, controller).core_id == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AtlasScheduler(2, quantum=0)
        with pytest.raises(ValueError):
            AtlasScheduler(2, decay=1.0)


class TestIntegration:
    @pytest.mark.parametrize("scheduler_cls",
                             [StfmScheduler, ParbsScheduler,
                              AtlasScheduler])
    def test_full_system_run(self, scheduler_cls):
        traces = workload_traces(1)
        system = SimSystem(traces, config=SCALED_MULTI_CONFIG,
                           scheduler=scheduler_cls(len(traces)))
        stats = system.run(30_000)
        assert all(core.work_cycles > 0 for core in stats.cores)
        assert stats.total_dram_requests > 0
